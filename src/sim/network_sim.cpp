#include "sim/network_sim.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/error.hpp"
#include "routing/registry.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"
#include "traffic/injection.hpp"

namespace vixnoc {

namespace {

/// Scalar aggregates of a TelemetrySummary (windows and trace are handled
/// by the callers: the checkpoint stores the collector's live state, the
/// result cache stores them verbatim).
void SaveTelemetryScalars(SnapshotWriter& w, const TelemetrySummary& s) {
  w.B(s.enabled);
  w.U64(s.cycles);
  w.U64(s.sa_requests);
  w.U64(s.sa_grants);
  w.U64(s.input_arbiter_requests);
  w.U64(s.input_arbiter_grants);
  w.U64(s.output_arbiter_requests);
  w.U64(s.output_arbiter_grants);
  w.U64(s.output_conflict_cycles);
  w.U64(s.port_multi_request_cycles);
  w.U64(s.vin_conflict_distinct_output);
  w.U64(s.vin_conflict_same_output);
  w.U64(s.single_vin_serialized);
  w.U64(s.stall_empty);
  w.U64(s.stall_va);
  w.U64(s.stall_credit);
  w.U64(s.stall_sa);
  w.U64(s.vc_moving);
  w.F64(s.crossbar_utilization);
  w.F64(s.same_output_conflict_rate);
  w.F64(s.distinct_output_conflict_rate);
  w.F64(s.mean_port_occupancy);
  w.F64(s.p99_port_occupancy);
}

void LoadTelemetryScalars(SnapshotReader& r, TelemetrySummary* s) {
  s->enabled = r.B();
  s->cycles = r.U64();
  s->sa_requests = r.U64();
  s->sa_grants = r.U64();
  s->input_arbiter_requests = r.U64();
  s->input_arbiter_grants = r.U64();
  s->output_arbiter_requests = r.U64();
  s->output_arbiter_grants = r.U64();
  s->output_conflict_cycles = r.U64();
  s->port_multi_request_cycles = r.U64();
  s->vin_conflict_distinct_output = r.U64();
  s->vin_conflict_same_output = r.U64();
  s->single_vin_serialized = r.U64();
  s->stall_empty = r.U64();
  s->stall_va = r.U64();
  s->stall_credit = r.U64();
  s->stall_sa = r.U64();
  s->vc_moving = r.U64();
  s->crossbar_utilization = r.F64();
  s->same_output_conflict_rate = r.F64();
  s->distinct_output_conflict_rate = r.F64();
  s->mean_port_occupancy = r.F64();
  s->p99_port_occupancy = r.F64();
}

void SaveSimOutcome(SnapshotWriter& w, const SimOutcome& o) {
  w.U8(static_cast<std::uint8_t>(o.status));
  w.Str(o.message);
  w.U64(o.cycle);
  w.VecU32(o.router_occupancy);
  w.U64(o.unreachable_packets);
  w.Str(o.checkpoint_path);
}

SimOutcome LoadSimOutcome(SnapshotReader& r) {
  SimOutcome o;
  const std::uint8_t status = r.U8();
  VIXNOC_REQUIRE(
      status <= static_cast<std::uint8_t>(SimStatus::kExecFailure),
      "restored outcome has invalid status %u", status);
  o.status = static_cast<SimStatus>(status);
  o.message = r.Str();
  o.cycle = r.U64();
  o.router_occupancy = r.VecU32();
  o.unreachable_packets = r.U64();
  o.checkpoint_path = r.Str();
  return o;
}

}  // namespace

std::string ToString(SimStatus status) {
  switch (status) {
    case SimStatus::kOk:
      return "ok";
    case SimStatus::kDeadlock:
      return "deadlock";
    case SimStatus::kUndeliverable:
      return "undeliverable";
    case SimStatus::kInvariantViolation:
      return "invariant-violation";
    case SimStatus::kExecFailure:
      return "exec-failure";
  }
  return "unknown";
}

void ValidateNetworkSimConfig(const NetworkSimConfig& config) {
  VIXNOC_REQUIRE(
      config.injection_rate >= 0.0 && config.injection_rate <= 1.0,
      "injection_rate must be in [0, 1], got %g", config.injection_rate);
  VIXNOC_REQUIRE(config.num_vcs >= 1, "num_vcs must be >= 1, got %d",
                 config.num_vcs);
  VIXNOC_REQUIRE(config.buffer_depth >= 1, "buffer_depth must be >= 1, got %d",
                 config.buffer_depth);
  VIXNOC_REQUIRE(config.packet_size >= 1, "packet_size must be >= 1, got %d",
                 config.packet_size);
  VIXNOC_REQUIRE(config.pipeline_stages == 3 || config.pipeline_stages == 5,
                 "pipeline_stages must be 3 or 5, got %d",
                 config.pipeline_stages);
  VIXNOC_REQUIRE(config.hotspot_node >= kInvalidNode,
                 "hotspot_node must be a node index or kInvalidNode, got %d",
                 config.hotspot_node);
  if (config.hotspot_node != kInvalidNode) {
    VIXNOC_REQUIRE(config.pattern == PatternKind::kHotspot ||
                       config.pattern == PatternKind::kIncast,
                   "hotspot_node is only meaningful for pattern=hotspot or "
                   "pattern=incast");
  }
  if (config.incast_fanin > 0) {
    VIXNOC_REQUIRE(config.pattern == PatternKind::kIncast,
                   "incast_fanin is only meaningful for pattern=incast");
  }
  if (config.scheme == AllocScheme::kVix) {
    const int vins =
        config.vix_virtual_inputs > 0 ? config.vix_virtual_inputs : 2;
    VIXNOC_REQUIRE(vins >= 2 && vins <= config.num_vcs,
                   "VIX virtual inputs must be in [2, num_vcs=%d], got %d",
                   config.num_vcs, vins);
    VIXNOC_REQUIRE(config.num_vcs % vins == 0,
                   "num_vcs (%d) must be divisible by VIX virtual inputs (%d)",
                   config.num_vcs, vins);
  }
  if (config.bursty) {
    VIXNOC_REQUIRE(config.burst_on_rate > 0.0 && config.burst_on_rate <= 1.0,
                   "burst_on_rate must be in (0, 1], got %g",
                   config.burst_on_rate);
    VIXNOC_REQUIRE(
        config.burst_on_rate >= config.injection_rate,
        "burst_on_rate (%g) must be >= the average injection_rate (%g)",
        config.burst_on_rate, config.injection_rate);
    VIXNOC_REQUIRE(config.mean_burst_cycles >= 1.0,
                   "mean_burst_cycles must be >= 1, got %g",
                   config.mean_burst_cycles);
  }

  const FaultConfig& f = config.faults;
  VIXNOC_REQUIRE(f.link_down_rate >= 0.0 && f.link_down_rate <= 1.0,
                 "faults.link_down_rate must be in [0, 1], got %g",
                 f.link_down_rate);
  VIXNOC_REQUIRE(f.transient_rate >= 0.0 && f.transient_rate <= 1.0,
                 "faults.transient_rate must be in [0, 1], got %g",
                 f.transient_rate);
  VIXNOC_REQUIRE(f.router_stall_rate >= 0.0 && f.router_stall_rate <= 1.0,
                 "faults.router_stall_rate must be in [0, 1], got %g",
                 f.router_stall_rate);
  VIXNOC_REQUIRE(f.corruption_rate >= 0.0 && f.corruption_rate <= 1.0,
                 "faults.corruption_rate must be in [0, 1], got %g",
                 f.corruption_rate);
  const bool permanent_faults =
      f.link_down_rate > 0.0 || !f.forced_link_down.empty();
  if (permanent_faults && !config.topology_factory) {
    VIXNOC_REQUIRE(config.topology != TopologyKind::kTorus,
                   "permanent link faults are unsupported on the torus: "
                   "detour routing breaks the dateline VC deadlock-freedom "
                   "argument");
  }
  if (!config.routing_factory) {
    VIXNOC_REQUIRE(IsRegisteredRouting(config.routing),
                   "unknown routing algorithm '%s' (registered: %s)",
                   config.routing.c_str(),
                   RegisteredRoutingNamesJoined().c_str());
    if (config.routing == "adaptive_min") {
      VIXNOC_REQUIRE(!permanent_faults,
                     "routing=adaptive_min does not support permanent link "
                     "faults (the DOR escape path could be severed); use "
                     "routing=fault_aware");
      const bool torus = !config.topology_factory &&
                         config.topology == TopologyKind::kTorus;
      // One escape VC (two on the torus: the dateline pair) plus at least
      // one adaptively shared VC per message class.
      const int min_vcs = torus ? 3 : 2;
      VIXNOC_REQUIRE(config.num_vcs >= min_vcs,
                     "routing=adaptive_min needs num_vcs >= %d on this "
                     "topology (escape VCs + one adaptive VC), got %d",
                     min_vcs, config.num_vcs);
    }
  }
  if (config.telemetry.enabled) {
    VIXNOC_REQUIRE(config.telemetry.window_cycles >= 1,
                   "telemetry.window_cycles must be >= 1, got %llu",
                   static_cast<unsigned long long>(
                       config.telemetry.window_cycles));
    VIXNOC_REQUIRE(config.telemetry.max_windows >= 2,
                   "telemetry.max_windows must be >= 2, got %zu",
                   config.telemetry.max_windows);
    if (config.telemetry.trace_sample_period > 0) {
      VIXNOC_REQUIRE(config.telemetry.max_trace_events >= 1,
                     "telemetry.max_trace_events must be >= 1 when tracing, "
                     "got %zu",
                     config.telemetry.max_trace_events);
    }
  }

  VIXNOC_REQUIRE(config.checkpoint_every == 0 ||
                     !config.checkpoint_path.empty(),
                 "checkpoint_every=%llu needs a checkpoint_path",
                 static_cast<unsigned long long>(config.checkpoint_every));
  VIXNOC_REQUIRE(config.deadlock_checkpoint_path.empty() ||
                     config.watchdog_cycles > 0,
                 "deadlock_checkpoint_path needs the watchdog enabled "
                 "(watchdog_cycles > 0)");

  // A transient outage or stall window parks all affected traffic for its
  // whole duration; the watchdog must outlast it or a healthy run is
  // misreported as deadlocked.
  if (config.watchdog_cycles > 0) {
    if (f.transient_rate > 0.0) {
      VIXNOC_REQUIRE(config.watchdog_cycles > f.transient_duration,
                     "watchdog_cycles (%lld) must exceed "
                     "faults.transient_duration (%lld)",
                     static_cast<long long>(config.watchdog_cycles),
                     static_cast<long long>(f.transient_duration));
    }
    if (f.router_stall_rate > 0.0) {
      VIXNOC_REQUIRE(config.watchdog_cycles > f.stall_duration,
                     "watchdog_cycles (%lld) must exceed "
                     "faults.stall_duration (%lld)",
                     static_cast<long long>(config.watchdog_cycles),
                     static_cast<long long>(f.stall_duration));
    }
  }
}

NetworkSimResult RunNetworkSim(const NetworkSimConfig& config) {
  // Attributes any abort or SimError below to the offending sim point.
  ScopedSimContext sim_ctx(
      "scheme=%s topology=%s rate=%g seed=%llu",
      ToString(config.scheme).c_str(), ToString(config.topology).c_str(),
      config.injection_rate,
      static_cast<unsigned long long>(config.seed));
  ValidateNetworkSimConfig(config);

  std::shared_ptr<Topology> topology =
      config.topology_factory ? config.topology_factory()
                              : MakeTopology64(config.topology);
  NetworkParams params;
  params.router.radix = topology->Radix();
  params.router.num_vcs = config.num_vcs;
  params.router.buffer_depth = config.buffer_depth;
  params.router.scheme = config.scheme;
  params.router.arbiter_kind = config.arbiter;
  params.router.vc_policy =
      config.vc_policy.value_or(RouterConfig::DefaultPolicyFor(config.scheme));
  params.router.ap_rotate_vcs = config.ap_rotate_vcs;
  params.router.vix_virtual_inputs = config.vix_virtual_inputs;
  params.router.interleaved_vins = config.interleaved_vins;
  params.router.atomic_vc_alloc = config.atomic_vc_alloc;
  params.router.prioritize_nonspeculative = config.prioritize_nonspeculative;
  params.router.va_organization = config.va_organization;
  // Only kRandomFree ever draws from the VA RNG, so seeding it is free for
  // every deterministic policy.
  params.router.vc_rng_seed = config.seed;
  if (config.pipeline_stages == 5) {
    params.router.speculative_sa = false;  // VA and SA in separate stages
    params.flit_delay = 4;                 // ST + LT + RC at the next hop
  }

  // Fault schedule and the routing plugin are pure functions of the config,
  // so results are identical regardless of how a sweep is threaded. The
  // routing algorithm must outlive the network (raw pointer in params).
  RoutingBuildContext routing_ctx;
  if (config.faults.Enabled()) {
    const std::uint64_t fault_seed =
        config.faults.seed != 0 ? config.faults.seed : config.seed;
    auto faults =
        std::make_shared<const FaultModel>(*topology, config.faults,
                                           fault_seed);
    routing_ctx.dead_links = faults->permanent_down();
    params.faults = std::move(faults);
  }
  std::string routing_name = config.routing;
  if (routing_name == "dor" && !routing_ctx.dead_links.empty()) {
    // The default routing detours around permanent faults (legacy
    // behavior); an *explicit* non-default plugin must be fault-compatible
    // or the registry rejects it.
    routing_name = "fault_aware";
  }
  const std::unique_ptr<RoutingAlgorithm> routing_algo =
      config.routing_factory
          ? config.routing_factory(*topology)
          : MakeRoutingAlgorithm(routing_name, *topology, routing_ctx);
  VIXNOC_CHECK(routing_algo != nullptr);
  params.routing = routing_algo.get();

  std::unique_ptr<TelemetryCollector> telemetry;
  if (config.telemetry.enabled) {
    telemetry = std::make_unique<TelemetryCollector>(config.telemetry);
    params.telemetry = telemetry.get();
  }

  Network net(topology, params);
  const int num_nodes = net.NumNodes();

  PatternOptions pattern_opts;
  pattern_opts.hotspot_node = config.hotspot_node;
  pattern_opts.incast_fanin = config.incast_fanin;
  auto pattern = MakePattern(config.pattern, pattern_opts);
  Rng rng(config.seed);
  std::unique_ptr<InjectionProcess> injector;
  if (config.bursty) {
    injector = std::make_unique<OnOffInjection>(
        num_nodes, config.injection_rate, config.burst_on_rate,
        config.mean_burst_cycles);
  } else {
    injector = std::make_unique<BernoulliInjection>(config.injection_rate);
  }

  const Cycle measure_start = config.warmup;
  const Cycle measure_end = config.warmup + config.measure;
  const Cycle sim_end = measure_end + config.drain;

  RunningStat latency;
  RunningStat net_latency;
  Histogram latency_hist(/*bucket_width=*/4.0, /*num_buckets=*/4096);
  RunningStat interval_latency;  // latency of packets ejected this interval
  std::uint64_t interval_packets = 0;
  std::uint64_t packets_corrupted = 0;
  Cycle last_delivery = 0;
  net.SetEjectCallback([&](const PacketRecord& rec) {
    last_delivery = rec.ejected;
    if (rec.corrupted) ++packets_corrupted;
    if (rec.created >= measure_start && rec.created < measure_end) {
      latency.Add(static_cast<double>(rec.ejected - rec.created));
      net_latency.Add(static_cast<double>(rec.ejected - rec.injected));
      latency_hist.Add(static_cast<double>(rec.ejected - rec.created));
    }
    if (config.sample_interval > 0) {
      interval_latency.Add(static_cast<double>(rec.ejected - rec.created));
      ++interval_packets;
    }
  });

  std::vector<NodeCounters> at_measure_start(num_nodes);
  std::vector<NodeCounters> at_measure_end(num_nodes);
  bool measure_window_closed = false;
  RouterActivity activity_snapshot;
  std::uint64_t offered_packets = 0;

  NetworkSimResult result;
  SimOutcome outcome;

  // --- Checkpoint/restore (snapshot/) ------------------------------------
  // A checkpoint captures the state *before* any work of cycle `next`, so
  // a restored run re-executes iteration `next` in full and every
  // downstream decision — sampling, measurement snapshots, injection draws,
  // router arbitration — replays bitwise identically. Serialization only
  // reads state (no RNG draws), so saving never perturbs the run.
  const std::uint64_t config_fp = NetworkSimConfigFingerprint(config);
  const auto serialize_sim = [&](Cycle next) {
    SnapshotWriter w;
    w.BeginSection("sim");
    w.U64(next);
    SaveRng(w, rng);
    w.Str(injector->Name());
    injector->SaveState(w);
    SaveRunningStat(w, latency);
    SaveRunningStat(w, net_latency);
    SaveHistogram(w, latency_hist);
    SaveRunningStat(w, interval_latency);
    w.U64(interval_packets);
    w.U64(packets_corrupted);
    w.U64(last_delivery);
    w.U64(offered_packets);
    w.B(measure_window_closed);
    for (const NodeCounters& c : at_measure_start) SaveNodeCounters(w, c);
    for (const NodeCounters& c : at_measure_end) SaveNodeCounters(w, c);
    SaveRouterActivity(w, activity_snapshot);
    w.U32(static_cast<std::uint32_t>(result.timeline.size()));
    for (const IntervalSample& s : result.timeline) {
      w.U64(s.start);
      w.F64(s.accepted_ppc);
      w.F64(s.avg_latency);
      w.U64(s.packets);
    }
    w.U64(outcome.unreachable_packets);
    // The counter aggregates frozen at measure_end (windows and trace are
    // re-read from the collector after the loop).
    const bool frozen = measure_window_closed && telemetry != nullptr;
    w.B(frozen);
    if (frozen) SaveTelemetryScalars(w, result.telemetry);
    w.EndSection();
    w.BeginSection("network");
    net.SaveState(w);
    w.EndSection();
    if (telemetry != nullptr) {
      w.BeginSection("telemetry");
      telemetry->SaveState(w);
      w.EndSection();
    }
    return w.Finish(config_fp);
  };

  Cycle start_cycle = 0;
  if (!config.restore_path.empty()) {
    SnapshotReader r(ReadSnapshotFile(config.restore_path));
    VIXNOC_REQUIRE(r.fingerprint() == config_fp,
                   "checkpoint '%s' was taken under a different simulation "
                   "config (fingerprint %016llx, this config is %016llx)",
                   config.restore_path.c_str(),
                   static_cast<unsigned long long>(r.fingerprint()),
                   static_cast<unsigned long long>(config_fp));
    r.OpenSection("sim");
    start_cycle = r.U64();
    VIXNOC_REQUIRE(start_cycle <= sim_end,
                   "checkpoint resumes at cycle %llu, past the end of this "
                   "run (%llu)",
                   static_cast<unsigned long long>(start_cycle),
                   static_cast<unsigned long long>(sim_end));
    LoadRng(r, &rng);
    const std::string injector_name = r.Str();
    VIXNOC_REQUIRE(injector_name == injector->Name(),
                   "checkpoint used injection process '%s', this config "
                   "builds '%s'",
                   injector_name.c_str(), injector->Name().c_str());
    injector->LoadState(r);
    LoadRunningStat(r, &latency);
    LoadRunningStat(r, &net_latency);
    LoadHistogram(r, &latency_hist);
    LoadRunningStat(r, &interval_latency);
    interval_packets = r.U64();
    packets_corrupted = r.U64();
    last_delivery = r.U64();
    offered_packets = r.U64();
    measure_window_closed = r.B();
    for (NodeCounters& c : at_measure_start) LoadNodeCounters(r, &c);
    for (NodeCounters& c : at_measure_end) LoadNodeCounters(r, &c);
    activity_snapshot = LoadRouterActivity(r);
    const std::uint32_t nts = r.U32();
    result.timeline.reserve(nts);
    for (std::uint32_t i = 0; i < nts; ++i) {
      IntervalSample s;
      s.start = r.U64();
      s.accepted_ppc = r.F64();
      s.avg_latency = r.F64();
      s.packets = r.U64();
      result.timeline.push_back(s);
    }
    outcome.unreachable_packets = r.U64();
    if (r.B()) LoadTelemetryScalars(r, &result.telemetry);
    r.CloseSection();
    r.OpenSection("network");
    net.LoadState(r);
    r.CloseSection();
    if (telemetry != nullptr && r.HasSection("telemetry")) {
      r.OpenSection("telemetry");
      telemetry->LoadState(r);
      r.CloseSection();
    }
  }

  // Rolling pre-deadlock snapshots: two alternating in-memory blobs, so
  // that when the watchdog fires the older one is guaranteed to predate
  // the detection point by at least one full watchdog window.
  const bool rolling_enabled = config.watchdog_cycles > 0 &&
                               !config.deadlock_checkpoint_path.empty();
  std::string rolling_prev;
  std::string rolling_cur;

  for (Cycle t = start_cycle; t < sim_end; ++t) {
    if (config.checkpoint_every > 0 && t > 0 && t != start_cycle &&
        t % config.checkpoint_every == 0) {
      WriteSnapshotFile(config.checkpoint_path, serialize_sim(t));
    }
    if (rolling_enabled && t % config.watchdog_cycles == 0) {
      rolling_prev = std::move(rolling_cur);
      rolling_cur = serialize_sim(t);
    }
    if (config.sample_interval > 0 && t > 0 &&
        t % config.sample_interval == 0) {
      IntervalSample sample;
      sample.start = t - config.sample_interval;
      sample.packets = interval_packets;
      sample.accepted_ppc =
          static_cast<double>(interval_packets) /
          (static_cast<double>(config.sample_interval) * num_nodes);
      sample.avg_latency = interval_latency.Mean();
      result.timeline.push_back(sample);
      interval_latency.Reset();
      interval_packets = 0;
    }
    if (t == measure_start) {
      for (NodeId n = 0; n < num_nodes; ++n) {
        at_measure_start[n] = net.counters(n);
      }
      net.ClearActivity();
      if (telemetry != nullptr) telemetry->ResetCounters();
    }
    if (t == measure_end) {
      for (NodeId n = 0; n < num_nodes; ++n) {
        at_measure_end[n] = net.counters(n);
      }
      activity_snapshot = net.TotalActivity();
      measure_window_closed = true;
      // Counter aggregates are frozen here; windows and trace (snapshotted
      // again after the loop) keep running through the drain.
      if (telemetry != nullptr) result.telemetry = telemetry->Summarize();
    }
    // Injection at every node, including during drain (holding the load
    // keeps measured packets under realistic contention).
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (injector->ShouldInject(n, rng)) {
        // Draw the destination before the reachability gate so the RNG
        // stream — and therefore every reachable packet — is identical to
        // the fault-free run.
        const NodeId dst = pattern->Dest(n, num_nodes, rng);
        if (routing_algo->MayBeUnreachable() &&
            !routing_algo->Reachable(net.topology().RouterOfNode(n), dst)) {
          ++outcome.unreachable_packets;
          continue;
        }
        net.EnqueuePacket(n, dst, config.packet_size);
        if (t >= measure_start && t < measure_end) ++offered_packets;
      }
    }
    net.Step();
    if (config.watchdog_cycles > 0 &&
        net.SuspectedDeadlock(config.watchdog_cycles)) {
      outcome.status = SimStatus::kDeadlock;
      outcome.cycle = net.now();
      outcome.router_occupancy = net.OccupancySnapshot();
      outcome.message = "no flit movement for " +
                        std::to_string(config.watchdog_cycles) +
                        " cycles with flits in flight (detected at cycle " +
                        std::to_string(net.now()) + ")";
      if (rolling_enabled) {
        // Persist the pre-deadlock state for post-mortem replay (restore it
        // with tracing enabled to watch the final cycles wedge).
        const std::string& blob =
            rolling_prev.empty() ? rolling_cur : rolling_prev;
        if (!blob.empty()) {
          WriteSnapshotFile(config.deadlock_checkpoint_path, blob);
          outcome.checkpoint_path = config.deadlock_checkpoint_path;
        }
      }
      break;
    }
  }

  result.num_nodes = num_nodes;
  result.measure_cycles = config.measure;
  result.offered_ppc = config.injection_rate;
  result.packets_corrupted = packets_corrupted;

  if (telemetry != nullptr) {
    // A run that ended before measure_end has no frozen counter snapshot;
    // fall back to end-of-run aggregates so the telemetry is never silently
    // empty (outcome.status already marks the metrics untrustworthy).
    if (!measure_window_closed) result.telemetry = telemetry->Summarize();
    result.telemetry.windows = telemetry->windows();
    result.telemetry.trace = telemetry->trace_events();
  }

  // A deadlock before the measurement window closes leaves the end-of-window
  // snapshot unset; report the structured outcome and keep the metrics zero
  // rather than publishing garbage.
  if (measure_window_closed) {
    std::uint64_t delivered_total = 0;
    std::uint64_t flits_total = 0;
    double min_node = 1e300, max_node = 0.0;
    for (NodeId n = 0; n < num_nodes; ++n) {
      const std::uint64_t delivered = at_measure_end[n].packets_delivered -
                                      at_measure_start[n].packets_delivered;
      const std::uint64_t flits =
          at_measure_end[n].flits_ejected - at_measure_start[n].flits_ejected;
      delivered_total += delivered;
      flits_total += flits;
      const double node_ppc =
          static_cast<double>(delivered) / static_cast<double>(config.measure);
      min_node = std::min(min_node, node_ppc);
      max_node = std::max(max_node, node_ppc);
    }
    result.accepted_ppc =
        static_cast<double>(delivered_total) /
        (static_cast<double>(config.measure) * num_nodes);
    result.accepted_fpc =
        static_cast<double>(flits_total) / static_cast<double>(config.measure);
    result.min_node_ppc = min_node;
    result.max_node_ppc = max_node;
    result.max_min_ratio = min_node > 0.0 ? max_node / min_node : 0.0;
    result.avg_latency = latency.Mean();
    result.avg_net_latency = net_latency.Mean();
    result.p99_latency = latency_hist.Quantile(0.99);
    result.packets_measured = latency.Count();
    const double offered_meas =
        static_cast<double>(offered_packets) /
        (static_cast<double>(config.measure) * num_nodes);
    result.saturated = result.accepted_ppc < 0.95 * offered_meas;
    result.activity = activity_snapshot;
  }

  if (outcome.status == SimStatus::kOk && config.faults.Enabled()) {
    if (outcome.unreachable_packets > 0) {
      outcome.status = SimStatus::kUndeliverable;
      outcome.cycle = net.now();
      outcome.router_occupancy = net.OccupancySnapshot();
      outcome.message = std::to_string(outcome.unreachable_packets) +
                        " packets had no surviving path to their destination";
    } else if (config.watchdog_cycles > 0 && !net.Quiescent() &&
               !result.saturated &&
               net.now() - last_delivery > config.watchdog_cycles) {
      // Flits are in flight but nothing has been *delivered* for a whole
      // watchdog window — livelock, or traffic wedged short of the full
      // no-movement deadlock criterion. (Injection continues through the
      // drain by design, so mere non-quiescence at the end is normal.)
      outcome.status = SimStatus::kUndeliverable;
      outcome.cycle = net.now();
      outcome.router_occupancy = net.OccupancySnapshot();
      outcome.message = "no packet delivered since cycle " +
                        std::to_string(last_delivery) +
                        " with flits still in flight at end of drain";
    }
  }
  result.outcome = std::move(outcome);
  return result;
}

std::uint64_t NetworkSimConfigFingerprint(const NetworkSimConfig& c) {
  const auto dbl = [](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
  };
  std::vector<std::uint64_t> fields = {
      static_cast<std::uint64_t>(c.topology),
      static_cast<std::uint64_t>(c.scheme),
      static_cast<std::uint64_t>(c.num_vcs),
      static_cast<std::uint64_t>(c.buffer_depth),
      static_cast<std::uint64_t>(c.packet_size),
      dbl(c.injection_rate),
      static_cast<std::uint64_t>(c.pattern),
      static_cast<std::uint64_t>(c.arbiter),
      static_cast<std::uint64_t>(c.vc_policy.has_value()),
      static_cast<std::uint64_t>(
          c.vc_policy.value_or(VcAssignPolicy::kMaxCredits)),
      static_cast<std::uint64_t>(c.ap_rotate_vcs),
      static_cast<std::uint64_t>(c.pipeline_stages),
      static_cast<std::uint64_t>(c.vix_virtual_inputs),
      static_cast<std::uint64_t>(c.interleaved_vins),
      static_cast<std::uint64_t>(c.prioritize_nonspeculative),
      static_cast<std::uint64_t>(c.va_organization),
      static_cast<std::uint64_t>(c.atomic_vc_alloc),
      static_cast<std::uint64_t>(c.bursty),
      dbl(c.burst_on_rate),
      dbl(c.mean_burst_cycles),
      static_cast<std::uint64_t>(static_cast<bool>(c.topology_factory)),
      Fnv1a64(c.routing.data(), c.routing.size()),
      static_cast<std::uint64_t>(static_cast<bool>(c.routing_factory)),
      static_cast<std::uint64_t>(c.sample_interval),
      dbl(c.faults.link_down_rate),
      dbl(c.faults.transient_rate),
      static_cast<std::uint64_t>(c.faults.transient_period),
      static_cast<std::uint64_t>(c.faults.transient_duration),
      dbl(c.faults.router_stall_rate),
      static_cast<std::uint64_t>(c.faults.stall_period),
      static_cast<std::uint64_t>(c.faults.stall_duration),
      dbl(c.faults.corruption_rate),
      c.faults.seed,
      static_cast<std::uint64_t>(c.watchdog_cycles),
      c.seed,
      static_cast<std::uint64_t>(c.warmup),
      static_cast<std::uint64_t>(c.measure),
      static_cast<std::uint64_t>(c.drain),
      static_cast<std::uint64_t>(
          static_cast<std::int64_t>(c.hotspot_node)),
      static_cast<std::uint64_t>(
          static_cast<std::int64_t>(c.incast_fanin)),
  };
  for (const auto& [router, port] : c.faults.forced_link_down) {
    fields.push_back(static_cast<std::uint64_t>(router));
    fields.push_back(static_cast<std::uint64_t>(port));
  }
  return Fnv1a64(fields.data(), fields.size() * sizeof(std::uint64_t));
}

std::uint64_t NetworkSimResultKey(const NetworkSimConfig& c) {
  const std::uint64_t fields[] = {
      NetworkSimConfigFingerprint(c),
      static_cast<std::uint64_t>(c.telemetry.enabled),
      static_cast<std::uint64_t>(c.telemetry.window_cycles),
      static_cast<std::uint64_t>(c.telemetry.max_windows),
      c.telemetry.trace_sample_period,
      static_cast<std::uint64_t>(c.telemetry.max_trace_events),
      Fnv1a64(c.deadlock_checkpoint_path.data(),
              c.deadlock_checkpoint_path.size()),
  };
  return Fnv1a64(fields, sizeof(fields));
}

void SaveNetworkSimResult(SnapshotWriter& w, const NetworkSimResult& r) {
  w.F64(r.offered_ppc);
  w.F64(r.accepted_ppc);
  w.F64(r.accepted_fpc);
  w.F64(r.avg_latency);
  w.F64(r.avg_net_latency);
  w.F64(r.p99_latency);
  w.F64(r.min_node_ppc);
  w.F64(r.max_node_ppc);
  w.F64(r.max_min_ratio);
  w.U64(r.packets_measured);
  w.B(r.saturated);
  SaveRouterActivity(w, r.activity);
  w.U64(r.measure_cycles);
  w.I32(r.num_nodes);
  w.U64(r.packets_corrupted);
  SaveSimOutcome(w, r.outcome);
  w.U32(static_cast<std::uint32_t>(r.timeline.size()));
  for (const IntervalSample& s : r.timeline) {
    w.U64(s.start);
    w.F64(s.accepted_ppc);
    w.F64(s.avg_latency);
    w.U64(s.packets);
  }
  SaveTelemetryScalars(w, r.telemetry);
  w.U32(static_cast<std::uint32_t>(r.telemetry.windows.size()));
  for (const TelemetryWindow& win : r.telemetry.windows) {
    w.U64(win.start);
    w.U64(win.width);
    w.U64(win.sa_requests);
    w.U64(win.sa_grants);
    w.U64(win.vin_conflicts_distinct);
    w.U64(win.vin_conflicts_same);
    w.U64(win.packets_ejected);
  }
  w.U32(static_cast<std::uint32_t>(r.telemetry.trace.size()));
  for (const PacketTraceEvent& ev : r.telemetry.trace) {
    w.U64(ev.packet);
    w.U8(static_cast<std::uint8_t>(ev.kind));
    w.U64(ev.cycle);
    w.I32(ev.router);
    w.I32(ev.src);
    w.I32(ev.dst);
  }
}

NetworkSimResult LoadNetworkSimResult(SnapshotReader& r) {
  NetworkSimResult out;
  out.offered_ppc = r.F64();
  out.accepted_ppc = r.F64();
  out.accepted_fpc = r.F64();
  out.avg_latency = r.F64();
  out.avg_net_latency = r.F64();
  out.p99_latency = r.F64();
  out.min_node_ppc = r.F64();
  out.max_node_ppc = r.F64();
  out.max_min_ratio = r.F64();
  out.packets_measured = r.U64();
  out.saturated = r.B();
  out.activity = LoadRouterActivity(r);
  out.measure_cycles = r.U64();
  out.num_nodes = r.I32();
  out.packets_corrupted = r.U64();
  out.outcome = LoadSimOutcome(r);
  const std::uint32_t nts = r.U32();
  out.timeline.reserve(nts);
  for (std::uint32_t i = 0; i < nts; ++i) {
    IntervalSample s;
    s.start = r.U64();
    s.accepted_ppc = r.F64();
    s.avg_latency = r.F64();
    s.packets = r.U64();
    out.timeline.push_back(s);
  }
  LoadTelemetryScalars(r, &out.telemetry);
  const std::uint32_t nw = r.U32();
  out.telemetry.windows.reserve(nw);
  for (std::uint32_t i = 0; i < nw; ++i) {
    TelemetryWindow win;
    win.start = r.U64();
    win.width = r.U64();
    win.sa_requests = r.U64();
    win.sa_grants = r.U64();
    win.vin_conflicts_distinct = r.U64();
    win.vin_conflicts_same = r.U64();
    win.packets_ejected = r.U64();
    out.telemetry.windows.push_back(win);
  }
  const std::uint32_t nt = r.U32();
  out.telemetry.trace.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) {
    PacketTraceEvent ev;
    ev.packet = r.U64();
    const std::uint8_t kind = r.U8();
    VIXNOC_REQUIRE(kind <= static_cast<std::uint8_t>(
                               PacketTraceEvent::Kind::kEject),
                   "restored trace event has invalid kind %u", kind);
    ev.kind = static_cast<PacketTraceEvent::Kind>(kind);
    ev.cycle = r.U64();
    ev.router = r.I32();
    ev.src = r.I32();
    ev.dst = r.I32();
    out.telemetry.trace.push_back(ev);
  }
  return out;
}

}  // namespace vixnoc
