// Trace-driven network simulation: replay an exact packet schedule instead
// of drawing from a statistical process. Using one trace across allocator
// schemes removes injection-process noise from comparisons entirely —
// every scheme sees the same packets at the same cycles.
#pragma once

#include "sim/network_sim.hpp"
#include "traffic/trace.hpp"

namespace vixnoc {

/// Build a trace by sampling a statistical pattern: Bernoulli(rate) per
/// node per cycle for `cycles` cycles, fixed `packet_size`.
PacketTrace GeneratePatternTrace(PatternKind pattern, double rate,
                                 int num_nodes, Cycle cycles,
                                 int packet_size, std::uint64_t seed);

/// Replay `trace` under `config` (whose injection_rate/pattern/seed are
/// ignored). Measurement uses config.warmup/measure as in RunNetworkSim;
/// after the trace is exhausted the network drains fully (bounded by
/// config.drain extra cycles past the last record).
///
/// Checkpoint/restore works exactly as in RunNetworkSim: with
/// `checkpoint_every` > 0 the full state is written to `checkpoint_path`
/// periodically, and `restore_path` resumes a run bitwise identically to
/// one that never stopped. Checkpoints are stamped with the config
/// fingerprint folded with a hash of the trace contents, so restoring
/// under a different config *or a different trace* throws SimError.
NetworkSimResult RunTraceSim(const NetworkSimConfig& config,
                             const PacketTrace& trace);

}  // namespace vixnoc
