// Single-router switch-allocation efficiency harness (paper §4.2, Fig 7).
//
// An isolated router is driven at maximum injection: every input VC always
// holds a packet (refilled instantly with a uniformly random output port
// when it drains), downstream credits are infinite, and no VC allocation
// stands in the way. The measured grants/cycle isolates the allocator's
// matching efficiency from topology effects.
#pragma once

#include "alloc/switch_allocator.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace vixnoc {

struct SingleRouterConfig {
  int radix = 5;
  int num_vcs = 6;
  int packet_size = 1;  ///< flits per refill packet
  AllocScheme scheme = AllocScheme::kInputFirst;
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  Cycle cycles = 50'000;
  std::uint64_t seed = 7;
};

struct SingleRouterResult {
  double flits_per_cycle = 0.0;  ///< Fig 7's y-axis
  /// Grants divided by the per-cycle maximum-matching upper bound: 1.0
  /// means the allocator never left a claimable output idle.
  double matching_efficiency = 0.0;
  std::uint64_t total_grants = 0;
  std::uint64_t total_ideal = 0;
};

SingleRouterResult RunSingleRouter(const SingleRouterConfig& config);

}  // namespace vixnoc
