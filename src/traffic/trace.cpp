#include "traffic/trace.hpp"

#include <cinttypes>
#include <cstring>
#include <sstream>

#include "common/check.hpp"
#include "common/error.hpp"

namespace vixnoc {

void PacketTrace::Add(const TraceRecord& record) {
  VIXNOC_REQUIRE(record.size_flits >= 1,
                 "trace record needs size_flits >= 1, got %d",
                 record.size_flits);
  VIXNOC_REQUIRE(
      records_.empty() || records_.back().cycle <= record.cycle,
      "trace records must be in non-decreasing cycle order (%lld after %lld)",
      static_cast<long long>(record.cycle),
      static_cast<long long>(records_.back().cycle));
  records_.push_back(record);
}

Cycle PacketTrace::LastCycle() const {
  return records_.empty() ? 0 : records_.back().cycle;
}

std::string PacketTrace::ToText() const {
  std::ostringstream out;
  out << "# vixnoc packet trace v1: cycle src dst size_flits\n";
  for (const TraceRecord& r : records_) {
    out << r.cycle << ' ' << r.src << ' ' << r.dst << ' ' << r.size_flits
        << '\n';
  }
  return out.str();
}

PacketTrace PacketTrace::FromText(const std::string& text, int num_nodes) {
  PacketTrace trace;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    TraceRecord r;
    long long cycle, src, dst, size;
    const int fields =
        std::sscanf(line.c_str(), "%lld %lld %lld %lld", &cycle, &src, &dst,
                    &size);
    VIXNOC_REQUIRE(fields == 4,
                   "malformed trace line (want \"cycle src dst size\"): %s",
                   line.c_str());
    VIXNOC_REQUIRE(cycle >= 0 && src >= 0 && dst >= 0 && size >= 1,
                   "trace line has out-of-range fields: %s", line.c_str());
    if (num_nodes > 0) {
      VIXNOC_REQUIRE(src < num_nodes && dst < num_nodes,
                     "trace line names node >= num_nodes (%d): %s",
                     num_nodes, line.c_str());
    }
    r.cycle = static_cast<Cycle>(cycle);
    r.src = static_cast<NodeId>(src);
    r.dst = static_cast<NodeId>(dst);
    r.size_flits = static_cast<int>(size);
    trace.Add(r);  // Add() enforces cycle ordering
  }
  return trace;
}

void PacketTrace::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  VIXNOC_REQUIRE(f != nullptr, "cannot open trace file for writing: %s",
                 path.c_str());
  const std::string text = ToText();
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  VIXNOC_CHECK(written == text.size());
}

PacketTrace PacketTrace::Load(const std::string& path, int num_nodes) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  VIXNOC_REQUIRE(f != nullptr, "cannot open trace file for reading: %s",
                 path.c_str());
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return FromText(text, num_nodes);
}

std::vector<TraceRecord> TraceReplayer::TakeDue(Cycle cycle) {
  std::vector<TraceRecord> due;
  const auto& records = trace_.records();
  while (next_ < records.size() && records[next_].cycle <= cycle) {
    VIXNOC_DCHECK(records[next_].cycle == cycle);
    due.push_back(records[next_]);
    ++next_;
  }
  return due;
}

}  // namespace vixnoc
