// Packet-trace recording and replay.
//
// The paper's application results come from a trace-driven simulator; this
// module provides the equivalent plumbing for the network: capture the
// packet stream of any simulation to a portable text format, and replay a
// trace as an injection schedule (e.g. to compare allocators on *exactly*
// the same offered traffic, or to feed externally produced traces in).
//
// Format: one record per line, `cycle src dst size_flits`, sorted by
// cycle; lines starting with '#' are comments.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace vixnoc {

struct TraceRecord {
  Cycle cycle = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int size_flits = 1;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class PacketTrace {
 public:
  void Add(const TraceRecord& record);
  /// Records must be appended in non-decreasing cycle order; Add checks.
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  Cycle LastCycle() const;

  /// Serialize to / parse from the text format. Load replaces contents and
  /// validates ordering and field ranges against `num_nodes` (pass 0 to
  /// skip the node-range check).
  void Save(const std::string& path) const;
  static PacketTrace Load(const std::string& path, int num_nodes = 0);

  /// In-memory (de)serialization used by tests and by Save/Load.
  std::string ToText() const;
  static PacketTrace FromText(const std::string& text, int num_nodes = 0);

 private:
  std::vector<TraceRecord> records_;
};

/// Replays a trace's records in cycle order. The sim driver calls
/// `TakeDue(cycle)` once per cycle and enqueues the returned packets.
class TraceReplayer {
 public:
  explicit TraceReplayer(const PacketTrace& trace) : trace_(trace) {}

  /// Records with record.cycle == `cycle`. Must be called with strictly
  /// increasing cycles.
  std::vector<TraceRecord> TakeDue(Cycle cycle);

  bool Exhausted() const { return next_ == trace_.size(); }
  void Reset() { next_ = 0; }

  /// Replay cursor — records already consumed — for checkpoint/restore.
  std::size_t position() const { return next_; }
  void set_position(std::size_t pos) {
    VIXNOC_CHECK(pos <= trace_.size());
    next_ = pos;
  }

 private:
  const PacketTrace& trace_;
  std::size_t next_ = 0;
};

}  // namespace vixnoc
