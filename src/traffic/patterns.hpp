// Statistical traffic patterns (destination-selection functions) and the
// open-loop Bernoulli injection process used by the paper's evaluation
// (uniform random; the other classic patterns are provided for adversarial
// studies of the VIX VC-assignment policy, §2.3).
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace vixnoc {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Destination for a packet sourced at `src` in a `num_nodes` network.
  /// Patterns must never return `src` itself.
  virtual NodeId Dest(NodeId src, int num_nodes, Rng& rng) const = 0;

  virtual std::string Name() const = 0;
};

/// Uniform random over all nodes except the source.
class UniformRandomPattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "uniform"; }
};

/// Matrix transpose on a sqrt(N) x sqrt(N) layout: (x,y) -> (y,x).
class TransposePattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "transpose"; }
};

/// Bit complement: node i -> ~i (mod N).
class BitComplementPattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "bitcomp"; }
};

/// Bit reversal of the node index.
class BitReversePattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "bitrev"; }
};

/// Tornado on a sqrt(N) x sqrt(N) layout: half-way around each dimension.
class TornadoPattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "tornado"; }
};

/// The default hot node for a `num_nodes` network: row sqrt(N)/2 - 1,
/// col sqrt(N)/2 - 1 on square layouts (node 27 on the 64-node mesh —
/// off-center so DOR's X-then-Y paths concentrate on a few links), and
/// N/2 - 1 on non-square node counts.
NodeId DefaultHotspotNode(int num_nodes);

/// A fraction of the traffic targets a fixed hotspot node; the rest is
/// uniform random. Passing kInvalidNode as the hotspot derives the
/// off-center default from the network size (DefaultHotspotNode); an
/// explicit node is clamped modulo N for small test networks.
class HotspotPattern final : public TrafficPattern {
 public:
  HotspotPattern(NodeId hotspot, double hot_fraction)
      : hotspot_(hotspot), hot_fraction_(hot_fraction) {}
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "hotspot"; }

 private:
  NodeId hotspot_;
  double hot_fraction_;
};

/// Datacenter-style incast: a fixed set of M sender nodes all target one
/// receiver; every other node (and the receiver itself) sends uniform
/// background traffic. The senders are the `fan_in` lowest-numbered nodes
/// other than the receiver, so the sender set is a pure function of
/// (receiver, fan_in, N). `receiver` = kInvalidNode derives the default
/// node (DefaultHotspotNode); `fan_in` <= 0 means every node but the
/// receiver sends to it.
class IncastPattern final : public TrafficPattern {
 public:
  IncastPattern(NodeId receiver, int fan_in)
      : receiver_(receiver), fan_in_(fan_in) {}
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "incast"; }

 private:
  NodeId receiver_;
  int fan_in_;
};

enum class PatternKind {
  kUniform,
  kTranspose,
  kBitComplement,
  kBitReverse,
  kTornado,
  /// Fixed hotspot (derived off-center node — 27 on the 64-node layouts —
  /// unless overridden) drawing 15% of the traffic — the adaptive-routing
  /// stressor.
  kHotspot,
  /// M-senders-to-1-receiver incast with uniform background traffic.
  kIncast,
};

/// Per-pattern knobs beyond the kind itself. Defaults reproduce the
/// historical behaviour for every pattern.
struct PatternOptions {
  /// kHotspot: the hot node; kIncast: the receiver. kInvalidNode derives
  /// the off-center default from the network size.
  NodeId hotspot_node = kInvalidNode;
  /// kIncast only: number of sender nodes (<= 0: all nodes but the
  /// receiver).
  int incast_fanin = 0;
};

std::unique_ptr<TrafficPattern> MakePattern(PatternKind kind);
std::unique_ptr<TrafficPattern> MakePattern(PatternKind kind,
                                            const PatternOptions& opts);

/// Case-insensitive parse of "uniform", "transpose", "bitcomp",
/// "bitrev", "tornado", "hotspot", "incast". Returns false on unknown
/// input.
bool ParsePatternKind(const std::string& text, PatternKind* out);

}  // namespace vixnoc
