// Statistical traffic patterns (destination-selection functions) and the
// open-loop Bernoulli injection process used by the paper's evaluation
// (uniform random; the other classic patterns are provided for adversarial
// studies of the VIX VC-assignment policy, §2.3).
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace vixnoc {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Destination for a packet sourced at `src` in a `num_nodes` network.
  /// Patterns must never return `src` itself.
  virtual NodeId Dest(NodeId src, int num_nodes, Rng& rng) const = 0;

  virtual std::string Name() const = 0;
};

/// Uniform random over all nodes except the source.
class UniformRandomPattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "uniform"; }
};

/// Matrix transpose on a sqrt(N) x sqrt(N) layout: (x,y) -> (y,x).
class TransposePattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "transpose"; }
};

/// Bit complement: node i -> ~i (mod N).
class BitComplementPattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "bitcomp"; }
};

/// Bit reversal of the node index.
class BitReversePattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "bitrev"; }
};

/// Tornado on a sqrt(N) x sqrt(N) layout: half-way around each dimension.
class TornadoPattern final : public TrafficPattern {
 public:
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "tornado"; }
};

/// A fraction of the traffic targets a fixed hotspot node; the rest is
/// uniform random.
class HotspotPattern final : public TrafficPattern {
 public:
  HotspotPattern(NodeId hotspot, double hot_fraction)
      : hotspot_(hotspot), hot_fraction_(hot_fraction) {}
  NodeId Dest(NodeId src, int num_nodes, Rng& rng) const override;
  std::string Name() const override { return "hotspot"; }

 private:
  NodeId hotspot_;
  double hot_fraction_;
};

enum class PatternKind {
  kUniform,
  kTranspose,
  kBitComplement,
  kBitReverse,
  kTornado,
  /// Fixed hotspot (node 27 on the 64-node layouts, clamped modulo N
  /// elsewhere) drawing 15% of the traffic — the adaptive-routing stressor.
  kHotspot,
};

std::unique_ptr<TrafficPattern> MakePattern(PatternKind kind);

/// Case-insensitive parse of "uniform", "transpose", "bitcomp",
/// "bitrev", "tornado", "hotspot". Returns false on unknown input.
bool ParsePatternKind(const std::string& text, PatternKind* out);

}  // namespace vixnoc
