// Injection processes: when does a node offer a packet?
//
// The paper's evaluation uses a Bernoulli process (independent coin flip
// per node per cycle). Real traffic is burstier; the on-off (Markov
// modulated Bernoulli) process is the standard model: a node alternates
// between an ON state injecting at a high rate and a silent OFF state,
// with geometrically distributed sojourn times, while matching a target
// average rate.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace vixnoc {

class SnapshotReader;
class SnapshotWriter;

class InjectionProcess {
 public:
  virtual ~InjectionProcess() = default;

  /// One trial for `node` this cycle; must be called exactly once per node
  /// per cycle.
  virtual bool ShouldInject(NodeId node, Rng& rng) = 0;

  virtual std::string Name() const = 0;

  /// Checkpoint/restore of the process's mutable state (the Markov state of
  /// on-off traffic; Bernoulli is stateless). The caller's Rng stream is
  /// serialized separately.
  virtual void SaveState(SnapshotWriter& w) const = 0;
  virtual void LoadState(SnapshotReader& r) = 0;
};

/// Independent Bernoulli(rate) trials.
class BernoulliInjection final : public InjectionProcess {
 public:
  explicit BernoulliInjection(double rate);
  bool ShouldInject(NodeId node, Rng& rng) override;
  std::string Name() const override { return "bernoulli"; }
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;

 private:
  double rate_;
};

/// Two-state Markov modulated process. While ON, a node injects with
/// probability `on_rate` per cycle; while OFF it is silent. The mean ON
/// sojourn is `mean_burst_cycles`; the OFF sojourn is set so the long-run
/// average injection rate equals `avg_rate`. Requires avg_rate < on_rate.
class OnOffInjection final : public InjectionProcess {
 public:
  OnOffInjection(int num_nodes, double avg_rate, double on_rate,
                 double mean_burst_cycles);
  bool ShouldInject(NodeId node, Rng& rng) override;
  std::string Name() const override { return "on-off"; }
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;

  /// Fraction of time a node spends ON in steady state.
  double DutyCycle() const { return duty_; }

 private:
  double on_rate_;
  double p_on_to_off_;
  double p_off_to_on_;
  double duty_;
  std::vector<bool> on_;
};

}  // namespace vixnoc
