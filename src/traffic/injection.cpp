#include "traffic/injection.hpp"

#include "common/check.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

BernoulliInjection::BernoulliInjection(double rate) : rate_(rate) {
  VIXNOC_CHECK(rate >= 0.0 && rate <= 1.0);
}

bool BernoulliInjection::ShouldInject(NodeId, Rng& rng) {
  return rng.NextBool(rate_);
}

OnOffInjection::OnOffInjection(int num_nodes, double avg_rate, double on_rate,
                               double mean_burst_cycles)
    : on_rate_(on_rate), on_(static_cast<std::size_t>(num_nodes), false) {
  VIXNOC_CHECK(num_nodes > 0);
  VIXNOC_CHECK(avg_rate >= 0.0 && on_rate > 0.0 && on_rate <= 1.0);
  VIXNOC_CHECK(avg_rate < on_rate);
  VIXNOC_CHECK(mean_burst_cycles >= 1.0);
  duty_ = avg_rate / on_rate;  // fraction of cycles spent ON
  p_on_to_off_ = 1.0 / mean_burst_cycles;
  // Steady state: duty = p_off_on / (p_off_on + p_on_off).
  p_off_to_on_ = duty_ * p_on_to_off_ / (1.0 - duty_);
  VIXNOC_CHECK(p_off_to_on_ <= 1.0);
}

bool OnOffInjection::ShouldInject(NodeId node, Rng& rng) {
  // State transition first, then the injection trial in the new state.
  if (on_[node]) {
    if (rng.NextBool(p_on_to_off_)) on_[node] = false;
  } else {
    if (rng.NextBool(p_off_to_on_)) on_[node] = true;
  }
  return on_[node] && rng.NextBool(on_rate_);
}

void BernoulliInjection::SaveState(SnapshotWriter&) const {}

void BernoulliInjection::LoadState(SnapshotReader&) {}

void OnOffInjection::SaveState(SnapshotWriter& w) const { w.VecBool(on_); }

void OnOffInjection::LoadState(SnapshotReader& r) {
  std::vector<bool> on = r.VecBool();
  VIXNOC_REQUIRE(on.size() == on_.size(),
                 "restored on-off state has %zu nodes, expected %zu",
                 on.size(), on_.size());
  on_ = std::move(on);
}

}  // namespace vixnoc
