#include "traffic/patterns.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/check.hpp"

namespace vixnoc {

namespace {

int SideOf(int num_nodes) {
  const int side = static_cast<int>(std::lround(std::sqrt(num_nodes)));
  VIXNOC_CHECK(side * side == num_nodes);
  return side;
}

int BitsOf(int num_nodes) {
  int bits = 0;
  while ((1 << bits) < num_nodes) ++bits;
  VIXNOC_CHECK((1 << bits) == num_nodes);
  return bits;
}

/// Deterministic patterns can map a node to itself; remap to the next node
/// so every source always produces network traffic.
NodeId AvoidSelf(NodeId src, NodeId dst, int num_nodes) {
  return dst == src ? (dst + 1) % num_nodes : dst;
}

}  // namespace

NodeId UniformRandomPattern::Dest(NodeId src, int num_nodes, Rng& rng) const {
  const auto pick = static_cast<NodeId>(rng.NextBounded(num_nodes - 1));
  return pick >= src ? pick + 1 : pick;  // uniform over all nodes != src
}

NodeId TransposePattern::Dest(NodeId src, int num_nodes, Rng& rng) const {
  (void)rng;
  const int side = SideOf(num_nodes);
  const int x = src % side, y = src / side;
  return AvoidSelf(src, x * side + y, num_nodes);
}

NodeId BitComplementPattern::Dest(NodeId src, int num_nodes, Rng& rng) const {
  (void)rng;
  return AvoidSelf(src, (num_nodes - 1) - src, num_nodes);
}

NodeId BitReversePattern::Dest(NodeId src, int num_nodes, Rng& rng) const {
  (void)rng;
  const int bits = BitsOf(num_nodes);
  int rev = 0;
  for (int b = 0; b < bits; ++b) {
    if (src & (1 << b)) rev |= 1 << (bits - 1 - b);
  }
  return AvoidSelf(src, rev, num_nodes);
}

NodeId TornadoPattern::Dest(NodeId src, int num_nodes, Rng& rng) const {
  (void)rng;
  const int side = SideOf(num_nodes);
  const int x = src % side, y = src / side;
  const int tx = (x + side / 2) % side;
  const int ty = (y + side / 2) % side;
  return AvoidSelf(src, ty * side + tx, num_nodes);
}

NodeId DefaultHotspotNode(int num_nodes) {
  const int side = static_cast<int>(std::lround(std::sqrt(num_nodes)));
  if (side >= 2 && side * side == num_nodes) {
    const int d = side / 2 - 1;
    if (d >= 0) return d * side + d;  // row d, col d: off-center
  }
  return num_nodes >= 2 ? num_nodes / 2 - 1 : 0;
}

NodeId HotspotPattern::Dest(NodeId src, int num_nodes, Rng& rng) const {
  const NodeId hot = hotspot_ == kInvalidNode
                         ? DefaultHotspotNode(num_nodes)
                         : hotspot_ % num_nodes;  // clamp for small networks
  if (src != hot && rng.NextBool(hot_fraction_)) return hot;
  const auto pick = static_cast<NodeId>(rng.NextBounded(num_nodes - 1));
  return pick >= src ? pick + 1 : pick;
}

NodeId IncastPattern::Dest(NodeId src, int num_nodes, Rng& rng) const {
  const NodeId recv = receiver_ == kInvalidNode
                          ? DefaultHotspotNode(num_nodes)
                          : receiver_ % num_nodes;
  const int fan = fan_in_ <= 0 ? num_nodes - 1
                               : std::min(fan_in_, num_nodes - 1);
  if (src != recv) {
    // Sender rank: position of src among nodes != recv, ascending.
    const int rank = src < recv ? src : src - 1;
    if (rank < fan) return recv;
  }
  // Background (and receiver) traffic: uniform over all nodes != src.
  const auto pick = static_cast<NodeId>(rng.NextBounded(num_nodes - 1));
  return pick >= src ? pick + 1 : pick;
}

bool ParsePatternKind(const std::string& text, PatternKind* out) {
  std::string t = text;
  for (char& c : t) c = static_cast<char>(std::tolower(c));
  if (t == "uniform") {
    *out = PatternKind::kUniform;
  } else if (t == "transpose") {
    *out = PatternKind::kTranspose;
  } else if (t == "bitcomp" || t == "bit-complement") {
    *out = PatternKind::kBitComplement;
  } else if (t == "bitrev" || t == "bit-reverse") {
    *out = PatternKind::kBitReverse;
  } else if (t == "tornado") {
    *out = PatternKind::kTornado;
  } else if (t == "hotspot") {
    *out = PatternKind::kHotspot;
  } else if (t == "incast") {
    *out = PatternKind::kIncast;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<TrafficPattern> MakePattern(PatternKind kind) {
  return MakePattern(kind, PatternOptions{});
}

std::unique_ptr<TrafficPattern> MakePattern(PatternKind kind,
                                            const PatternOptions& opts) {
  switch (kind) {
    case PatternKind::kUniform:
      return std::make_unique<UniformRandomPattern>();
    case PatternKind::kTranspose:
      return std::make_unique<TransposePattern>();
    case PatternKind::kBitComplement:
      return std::make_unique<BitComplementPattern>();
    case PatternKind::kBitReverse:
      return std::make_unique<BitReversePattern>();
    case PatternKind::kTornado:
      return std::make_unique<TornadoPattern>();
    case PatternKind::kHotspot:
      // Default hot node derives from the layout (27 — row 3, col 3 — on
      // the 64-node mesh: off-center so DOR's X-then-Y paths concentrate
      // on a few links, the stressor the adaptive arm is measured
      // against); 15% hot traffic.
      return std::make_unique<HotspotPattern>(opts.hotspot_node, 0.15);
    case PatternKind::kIncast:
      return std::make_unique<IncastPattern>(opts.hotspot_node,
                                             opts.incast_fanin);
  }
  VIXNOC_CHECK(false);
  return nullptr;
}

}  // namespace vixnoc
