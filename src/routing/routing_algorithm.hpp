// Routing-algorithm interface: the policy layer between topology (wiring)
// and router (mechanism).
//
// Routers use it for lookahead route computation (determining the output
// port a packet will take at the *next* router, needed both to stamp flits
// and to drive VIX's dimension-aware VC assignment, paper §2.3), and — for
// adaptive algorithms — to enumerate the full *candidate set* of admissible
// outputs at the current router so the VA stage can pick by local credit
// state.
//
// Implementations live in src/routing/ behind the string-keyed factory in
// routing/registry.hpp (`routing=dor|adaptive_min|fault_aware`); they build
// explicit per-node route tables at construction instead of computing
// geometry inline, and expose a Fingerprint() that is mixed into checkpoint
// structure fingerprints so a restore with different routing is rejected.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

/// Dimension class of an output port, used by the VIX VC-assignment policy
/// to spread requests across virtual-input sub-groups.
enum class PortDimension {
  kX,     ///< port moves packets along the X dimension
  kY,     ///< port moves packets along the Y dimension
  kLocal, ///< ejection port towards a network interface
};

/// A sub-range [lo, hi) of the per-message-class VC partition that a packet
/// is allowed to occupy at its next hop.
struct VcRange {
  int lo = 0;
  int hi = 0;
};

/// One admissible output for a packet at a router: the port, the VC
/// sub-range (within one message class's partition) it may claim on that
/// output's channel, the dateline state it would carry after the hop, and
/// whether this is the escape candidate — the one whose restricted VC
/// range forms the acyclic (deadlock-freedom-preserving) sub-network.
struct RouteCandidate {
  PortId out_port = kInvalidPort;
  VcRange vc_range;
  std::uint8_t next_dateline = 0;
  bool escape = true;
};

/// Upper bound on Candidates() output; callers size stack arrays with it.
inline constexpr int kMaxRouteCandidates = 4;

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  /// Registry key for plugins; "custom" for ad-hoc (test) algorithms.
  virtual const char* Name() const { return "custom"; }

  /// Primary deterministic route: the output port at `router` for a packet
  /// headed to node `dst`. Must be a local ejection port when `dst` is
  /// attached to `router`. For adaptive algorithms this is the escape
  /// route, used for advisory lookahead stamping and NI injection.
  virtual PortId Route(RouterId router, NodeId dst) const = 0;

  /// Dimension classification of `port` (ports have uniform meaning across
  /// routers in all supported topologies).
  virtual PortDimension DimensionOf(PortId port) const = 0;

  /// Dateline state the packet carries after leaving `router` through
  /// `out_port` with current state `state`. Acyclic topologies keep it 0;
  /// torus routing flips a per-dimension bit at the wrap links.
  virtual std::uint8_t NextDatelineState(RouterId router, PortId out_port,
                                         std::uint8_t state) const {
    (void)router;
    (void)out_port;
    return state;
  }

  /// VCs (as indices within one message class's partition of
  /// `vcs_per_class` VCs) a packet with dateline state `state` may use on
  /// the channel leaving through `out_port`. The default is unrestricted;
  /// torus routing confines pre-/post-dateline packets to disjoint halves
  /// so the ring's channel-dependency cycle is broken.
  virtual VcRange AllowedVcRange(PortId out_port, std::uint8_t state,
                                 int vcs_per_class) const {
    (void)out_port;
    (void)state;
    return VcRange{0, vcs_per_class};
  }

  /// True when the router's VA stage should enumerate Candidates() and
  /// select by local credit/occupancy state instead of honoring the
  /// lookahead-stamped single route.
  virtual bool IsAdaptive() const { return false; }

  /// Admissible outputs at `router` for a packet to `dst` carrying dateline
  /// state `state`, written to `out` (capacity >= kMaxRouteCandidates).
  /// Returns the candidate count (>= 1). The set MUST contain at least one
  /// escape candidate whose (port, vc_range) choice keeps the escape
  /// sub-network's channel-dependency graph acyclic (Duato's criterion);
  /// the escape candidate is listed last so credit-based selection prefers
  /// adaptive candidates. The default is the one-candidate case derived
  /// from the single-route API.
  virtual int Candidates(RouterId router, NodeId dst, std::uint8_t state,
                         int vcs_per_class, RouteCandidate* out) const {
    RouteCandidate& c = out[0];
    c.out_port = Route(router, dst);
    c.next_dateline = NextDatelineState(router, c.out_port, state);
    c.vc_range = AllowedVcRange(c.out_port, c.next_dateline, vcs_per_class);
    c.escape = true;
    return 1;
  }

  /// True when some (source, destination) pairs may have no route at all
  /// (fault-degraded networks); drivers then gate injection on Reachable().
  virtual bool MayBeUnreachable() const { return false; }

  /// True when a packet sourced at a node of `from` can reach `dst`.
  virtual bool Reachable(RouterId from, NodeId dst) const {
    (void)from;
    (void)dst;
    return true;
  }

  /// Stable digest of the algorithm's identity AND its routing decisions
  /// (plugins mix their route tables in); part of the network structure
  /// fingerprint guarding checkpoint restores.
  virtual std::uint64_t Fingerprint() const {
    const char* name = Name();
    return Fnv1a64(name, std::strlen(name));
  }
};

}  // namespace vixnoc
