#include "routing/fault_aware.hpp"

#include <limits>
#include <queue>

#include "common/check.hpp"

namespace vixnoc {

FaultAwareRouting::FaultAwareRouting(
    const Topology& topology,
    const std::vector<std::pair<RouterId, PortId>>& dead_links)
    : topology_(&topology),
      base_(topology),
      num_routers_(topology.NumRouters()) {
  const int radix = topology.Radix();
  std::vector<bool> dead(static_cast<std::size_t>(num_routers_) * radix,
                         false);
  for (const auto& [r, o] : dead_links) {
    dead[static_cast<std::size_t>(r) * radix + o] = true;
  }

  // Surviving forward edges, and the reverse adjacency BFS runs over.
  std::vector<std::vector<OutputLinkInfo>> links(num_routers_);
  std::vector<std::vector<RouterId>> rev(num_routers_);
  for (RouterId r = 0; r < num_routers_; ++r) {
    links[r] = topology.LinksFor(r);
    for (PortId o = 0; o < radix; ++o) {
      if (links[r][o].neighbor >= 0 &&
          !dead[static_cast<std::size_t>(r) * radix + o]) {
        rev[links[r][o].neighbor].push_back(r);
      }
    }
  }

  constexpr int kUnreached = std::numeric_limits<int>::max();
  next_hop_.assign(static_cast<std::size_t>(num_routers_) * num_routers_,
                   kInvalidPort);
  std::vector<int> dist(num_routers_);
  std::queue<RouterId> frontier;
  for (RouterId d = 0; d < num_routers_; ++d) {
    std::fill(dist.begin(), dist.end(), kUnreached);
    dist[d] = 0;
    frontier.push(d);
    while (!frontier.empty()) {
      const RouterId n = frontier.front();
      frontier.pop();
      for (RouterId r : rev[n]) {
        if (dist[r] == kUnreached) {
          dist[r] = dist[n] + 1;
          frontier.push(r);
        }
      }
    }
    PortId* row = &next_hop_[static_cast<std::size_t>(d) * num_routers_];
    for (RouterId r = 0; r < num_routers_; ++r) {
      if (r == d) continue;
      if (dist[r] == kUnreached) {
        ++unreachable_pairs_;
        continue;
      }
      // First (lowest-index) surviving port on a shortest path. Port-index
      // order matches the mesh's E,W,N,S numbering, so fault-free routes
      // coincide with XY dimension order.
      for (PortId o = 0; o < radix; ++o) {
        const OutputLinkInfo& link = links[r][o];
        if (link.neighbor >= 0 &&
            !dead[static_cast<std::size_t>(r) * radix + o] &&
            dist[link.neighbor] == dist[r] - 1) {
          row[r] = o;
          break;
        }
      }
      VIXNOC_CHECK(row[r] != kInvalidPort);
    }
  }
}

PortId FaultAwareRouting::Route(RouterId router, NodeId dst) const {
  const RouterId dst_router = topology_->RouterOfNode(dst);
  if (dst_router == router) return base_.Route(router, dst);
  const PortId hop =
      next_hop_[static_cast<std::size_t>(dst_router) * num_routers_ + router];
  VIXNOC_CHECK(hop != kInvalidPort);  // callers gate injection on Reachable()
  return hop;
}

bool FaultAwareRouting::Reachable(RouterId from, NodeId dst) const {
  const RouterId dst_router = topology_->RouterOfNode(dst);
  if (dst_router == from) return true;
  return next_hop_[static_cast<std::size_t>(dst_router) * num_routers_ +
                   from] != kInvalidPort;
}

std::uint64_t FaultAwareRouting::Fingerprint() const {
  std::uint64_t h = Fnv1a64(Name(), std::strlen(Name()));
  h = base_.Fingerprint() ^ (h * 0x100000001b3ull);
  if (!next_hop_.empty()) {
    h = Fnv1a64(next_hop_.data(), next_hop_.size() * sizeof(PortId), h);
  }
  return h;
}

}  // namespace vixnoc
