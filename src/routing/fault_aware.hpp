// Fault-aware routing: minimal detours around permanently-dead links.
//
// Wraps table-driven DOR with a per-destination next-hop table computed by
// BFS over the surviving link graph. Where the DOR route survives, the
// table reproduces it exactly — output ports are considered in index
// order, which prefers X-dimension ports, so a fault-free mesh routes
// identically to XY DOR. Where a link on the DOR path is dead, the table
// takes a minimal detour. Where no path survives at all, the pair is
// *unreachable*: Reachable() reports it and the simulation driver refuses
// to inject such packets instead of letting them hang in a source queue
// forever.
//
// Detour paths are not guaranteed deadlock-free: a minimal detour can take
// an XY-illegal (Y-then-X) turn, and such turns close channel-dependency
// cycles once congestion fills the buffers around a fault region. (A
// VC-floor escalation scheme keyed on illegal-turn counts was tried here
// and measured strictly worse — restricting the VC range tightens the
// very buffers the cycle runs through without making the escape network
// acyclic.) Deadlock beyond the fault-degraded saturation point is
// expected behavior; the forward-progress watchdog in network_sim detects
// it and reports a structured outcome instead of hanging.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/dor.hpp"
#include "routing/routing_algorithm.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

class FaultAwareRouting final : public RoutingAlgorithm {
 public:
  /// `dead_links` are directed (router, out_port) channels to avoid.
  /// The topology must outlive this object.
  FaultAwareRouting(
      const Topology& topology,
      const std::vector<std::pair<RouterId, PortId>>& dead_links);

  const char* Name() const override { return "fault_aware"; }

  /// Table route. For destinations attached to `router` this delegates to
  /// the base routing (ejection ports never fault). It is a checked error
  /// to ask for a route to an unreachable destination — callers gate
  /// injection on Reachable().
  PortId Route(RouterId router, NodeId dst) const override;

  PortDimension DimensionOf(PortId port) const override {
    return base_.DimensionOf(port);
  }
  std::uint8_t NextDatelineState(RouterId router, PortId out_port,
                                 std::uint8_t state) const override {
    return base_.NextDatelineState(router, out_port, state);
  }
  VcRange AllowedVcRange(PortId out_port, std::uint8_t state,
                         int vcs_per_class) const override {
    return base_.AllowedVcRange(out_port, state, vcs_per_class);
  }

  bool MayBeUnreachable() const override { return unreachable_pairs_ > 0; }
  bool Reachable(RouterId from, NodeId dst) const override;

  /// Ordered (src_router, dst_router) pairs with no surviving path.
  std::uint64_t NumUnreachablePairs() const { return unreachable_pairs_; }

  std::uint64_t Fingerprint() const override;

 private:
  const Topology* topology_;
  DorRouting base_;
  int num_routers_;
  /// next_hop_[dst_router * num_routers_ + router]: output port toward
  /// dst_router, kInvalidPort when unreachable or co-located.
  std::vector<PortId> next_hop_;
  std::uint64_t unreachable_pairs_ = 0;
};

}  // namespace vixnoc
