#include "routing/adaptive_min.hpp"

#include "common/check.hpp"

namespace vixnoc {

AdaptiveMinRouting::AdaptiveMinRouting(const Topology& topo) : dor_(topo) {
  const int num_routers = topo.NumRouters();
  const int num_nodes = topo.NumNodes();
  const bool y_first =
      (topo.Kind() == TopologyKind::kMesh ||
       topo.Kind() == TopologyKind::kCMesh) &&
      topo.MeshOrder() == MeshRouteOrder::kYX;
  alt_.Reset(num_routers, num_nodes);
  for (RouterId r = 0; r < num_routers; ++r) {
    for (NodeId dst = 0; dst < num_nodes; ++dst) {
      // The other minimal output is DOR with the dimension priority
      // flipped; when both priorities agree (one dimension already
      // aligned, or co-located) there is no alternative.
      const PortId primary = dor_.Route(r, dst);
      const PortId flipped = DorPortFor(topo, r, dst, !y_first);
      alt_.Set(r, dst, flipped != primary ? flipped : kInvalidPort);
    }
  }
}

VcRange AdaptiveMinRouting::EscapeRange(PortId out_port,
                                        std::uint8_t next_state) const {
  if (!dor_.torus_datelines()) return VcRange{0, 1};
  // Torus escape: the dateline VC pair. Pre-crossing packets ride escape
  // VC 0, post-crossing VC 1 — the two-VC specialization of the
  // half-partition split plain torus DOR uses.
  const std::uint8_t bit = DimensionOf(out_port) == PortDimension::kX
                               ? kDatelineXCrossed
                               : kDatelineYCrossed;
  return (next_state & bit) ? VcRange{1, 2} : VcRange{0, 1};
}

VcRange AdaptiveMinRouting::AllowedVcRange(PortId out_port,
                                           std::uint8_t state,
                                           int vcs_per_class) const {
  if (DimensionOf(out_port) == PortDimension::kLocal) {
    return VcRange{0, vcs_per_class};
  }
  VIXNOC_CHECK(vcs_per_class >= MinVcsPerClass());
  return EscapeRange(out_port, state);
}

int AdaptiveMinRouting::Candidates(RouterId router, NodeId dst,
                                   std::uint8_t state, int vcs_per_class,
                                   RouteCandidate* out) const {
  const PortId primary = dor_.Route(router, dst);
  if (DimensionOf(primary) == PortDimension::kLocal) {
    out[0] = RouteCandidate{primary, VcRange{0, vcs_per_class}, state, true};
    return 1;
  }
  VIXNOC_CHECK(vcs_per_class >= MinVcsPerClass());
  const int adaptive_lo = dor_.torus_datelines() ? 2 : 1;
  const VcRange adaptive{adaptive_lo, vcs_per_class};

  int n = 0;
  const std::uint8_t primary_next =
      dor_.NextDatelineState(router, primary, state);
  out[n++] = RouteCandidate{primary, adaptive, primary_next, false};
  const PortId alt = alt_.At(router, dst);
  if (alt != kInvalidPort) {
    out[n++] = RouteCandidate{
        alt, adaptive, dor_.NextDatelineState(router, alt, state), false};
  }
  // The escape candidate comes last so credit-based selection prefers the
  // adaptive VCs, but it is ALWAYS present: whenever no adaptive VC is
  // free the packet requests the escape VC (Duato's criterion).
  out[n++] = RouteCandidate{primary, EscapeRange(primary, primary_next),
                            primary_next, true};
  return n;
}

std::uint64_t AdaptiveMinRouting::Fingerprint() const {
  std::uint64_t h = Fnv1a64(Name(), std::strlen(Name()));
  h = dor_.Fingerprint() ^ (h * 0x100000001b3ull);
  return alt_.Fingerprint(h);
}

}  // namespace vixnoc
