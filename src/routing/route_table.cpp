#include "routing/route_table.hpp"

#include "snapshot/snapshot.hpp"

namespace vixnoc {

void RouteTable::Reset(int num_routers, int num_nodes) {
  num_routers_ = num_routers;
  num_nodes_ = num_nodes;
  ports_.assign(static_cast<std::size_t>(num_routers) * num_nodes,
                kInvalidPort);
}

std::uint64_t RouteTable::Fingerprint(std::uint64_t seed) const {
  const std::int32_t dims[2] = {num_routers_, num_nodes_};
  std::uint64_t h = Fnv1a64(dims, sizeof(dims), seed);
  return Fnv1a64(ports_.data(), ports_.size() * sizeof(PortId), h);
}

}  // namespace vixnoc
