// Dense per-(router, destination-node) next-hop table.
//
// Route tables are indexed by destination *node*, not destination router:
// torus tie-breaking depends on node parity and ejection entries depend on
// the node's local port, so two nodes on the same router can have different
// table rows. Tables are built once at algorithm construction and never
// mutated afterwards, which makes Fingerprint() snapshot-stable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace vixnoc {

class RouteTable {
 public:
  RouteTable() = default;
  RouteTable(int num_routers, int num_nodes) { Reset(num_routers, num_nodes); }

  /// Resizes to `num_routers` x `num_nodes`, all entries kInvalidPort.
  void Reset(int num_routers, int num_nodes);

  PortId At(RouterId router, NodeId dst) const {
    return ports_[static_cast<std::size_t>(router) * num_nodes_ + dst];
  }
  void Set(RouterId router, NodeId dst, PortId port) {
    ports_[static_cast<std::size_t>(router) * num_nodes_ + dst] = port;
  }

  int num_routers() const { return num_routers_; }
  int num_nodes() const { return num_nodes_; }

  /// FNV-1a over the table dimensions and every entry, chained from `seed`.
  std::uint64_t Fingerprint(std::uint64_t seed) const;

 private:
  int num_routers_ = 0;
  int num_nodes_ = 0;
  std::vector<PortId> ports_;
};

}  // namespace vixnoc
