#include "routing/registry.hpp"

#include "common/error.hpp"
#include "routing/adaptive_min.hpp"
#include "routing/dor.hpp"
#include "routing/fault_aware.hpp"

namespace vixnoc {

const std::vector<std::string>& RegisteredRoutingNames() {
  static const std::vector<std::string> kNames = {"dor", "adaptive_min",
                                                  "fault_aware"};
  return kNames;
}

bool IsRegisteredRouting(const std::string& name) {
  for (const std::string& n : RegisteredRoutingNames()) {
    if (n == name) return true;
  }
  return false;
}

std::string RegisteredRoutingNamesJoined() {
  std::string known;
  for (const std::string& n : RegisteredRoutingNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return known;
}

std::unique_ptr<RoutingAlgorithm> MakeRoutingAlgorithm(
    const std::string& name, const Topology& topology,
    const RoutingBuildContext& context) {
  if (name == "dor") {
    // Permanent faults silently upgrade the default to fault_aware at the
    // sim-driver level, never here: an explicit `routing=dor` with dead
    // links would route packets straight into them.
    VIXNOC_REQUIRE(context.dead_links.empty(),
                   "routing=dor cannot detour around permanently dead "
                   "links; use routing=fault_aware");
    return std::make_unique<DorRouting>(topology);
  }
  if (name == "adaptive_min") {
    VIXNOC_REQUIRE(context.dead_links.empty(),
                   "routing=adaptive_min does not support permanently dead "
                   "links (the DOR escape path could be severed); use "
                   "routing=fault_aware");
    return std::make_unique<AdaptiveMinRouting>(topology);
  }
  if (name == "fault_aware") {
    return std::make_unique<FaultAwareRouting>(topology, context.dead_links);
  }
  VIXNOC_REQUIRE(false, "unknown routing algorithm '%s' (registered: %s)",
                 name.c_str(), RegisteredRoutingNamesJoined().c_str());
  return nullptr;
}

}  // namespace vixnoc
