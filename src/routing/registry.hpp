// String-keyed routing-plugin factory.
//
// The registry is a fixed table (no static-initializer registration — the
// plugin set is part of the simulator's contract and linker section order
// must never decide what `routing=` accepts). Unknown names throw SimError
// listing every registered plugin, so config validation and CLI parsing
// give the same actionable message.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "routing/routing_algorithm.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

/// Construction-time inputs a plugin may consume beyond the topology.
struct RoutingBuildContext {
  /// Directed (router, out_port) channels that are permanently dead
  /// (fault_aware detours around them; other plugins must not be built
  /// with permanent faults — validation enforces it).
  std::vector<std::pair<RouterId, PortId>> dead_links;
};

/// Registered plugin names, in registry order ("dor" first: the default).
const std::vector<std::string>& RegisteredRoutingNames();

bool IsRegisteredRouting(const std::string& name);

/// Comma-joined registered names for error messages ("dor, adaptive_min,
/// fault_aware").
std::string RegisteredRoutingNamesJoined();

/// Builds the named plugin for `topology`. Throws SimError for unknown
/// names, listing the registered plugins.
std::unique_ptr<RoutingAlgorithm> MakeRoutingAlgorithm(
    const std::string& name, const Topology& topology,
    const RoutingBuildContext& context = {});

}  // namespace vixnoc
