#include "routing/dor.hpp"

#include "common/check.hpp"

namespace vixnoc {

namespace {

// Mesh/torus port numbering (fbfly computes its ports from the grid shape).
constexpr PortId kEast = 0;
constexpr PortId kWest = 1;
constexpr PortId kNorth = 2;
constexpr PortId kSouth = 3;
constexpr PortId kMeshFirstLocal = 4;

}  // namespace

PortId DorPortFor(const Topology& topo, RouterId router, NodeId dst,
                  bool y_first) {
  const RouterId dr = topo.RouterOfNode(dst);
  if (dr == router) return topo.EjectPortOfNode(dst);
  const int cols = topo.Cols();
  const int x = router % cols, y = router / cols;
  const int dx = dr % cols, dy = dr / cols;
  switch (topo.Kind()) {
    case TopologyKind::kMesh:
    case TopologyKind::kCMesh: {
      if (y_first) {
        if (dy > y) return kNorth;
        if (dy < y) return kSouth;
      }
      if (dx > x) return kEast;
      if (dx < x) return kWest;
      if (dy > y) return kNorth;
      return kSouth;  // dy < y: some dimension differs since dr != router
    }
    case TopologyKind::kTorus: {
      const int rows = topo.Rows();
      // Shortest way around each ring. Exactly-half-way ties are split by
      // destination parity — a deterministic choice that is consistent
      // along the path (after one hop the distance is strictly minimal)
      // yet balances tie traffic across both ring directions.
      const auto x_ring = [&]() -> PortId {
        const int east_dist = (dx - x + cols) % cols;
        const int west_dist = cols - east_dist;
        if (east_dist != west_dist) {
          return east_dist < west_dist ? kEast : kWest;
        }
        return (dst & 1) ? kEast : kWest;
      };
      const auto y_ring = [&]() -> PortId {
        const int north_dist = (dy - y + rows) % rows;
        const int south_dist = rows - north_dist;
        if (north_dist != south_dist) {
          return north_dist < south_dist ? kNorth : kSouth;
        }
        return (dst & 1) ? kNorth : kSouth;
      };
      if (y_first) {
        if (dy != y) return y_ring();
        return x_ring();
      }
      if (dx != x) return x_ring();
      return y_ring();
    }
    case TopologyKind::kFBfly: {
      // X ports are ordered by destination column skipping self; Y ports
      // follow from cols-1, ordered by destination row skipping self.
      const PortId first_y = cols - 1;
      const auto x_hop = [&]() -> PortId { return dx < x ? dx : dx - 1; };
      const auto y_hop = [&]() -> PortId {
        return first_y + (dy < y ? dy : dy - 1);
      };
      if (y_first) {
        if (dy != y) return y_hop();
        return x_hop();
      }
      if (dx != x) return x_hop();
      return y_hop();
    }
  }
  VIXNOC_CHECK(false);
  return kInvalidPort;
}

DorRouting::DorRouting(const Topology& topo) : radix_(topo.Radix()) {
  const TopologyKind kind = topo.Kind();
  const int num_routers = topo.NumRouters();
  const int num_nodes = topo.NumNodes();
  const int cols = topo.Cols();
  const int rows = topo.Rows();
  torus_split_ = kind == TopologyKind::kTorus;

  dims_.resize(radix_);
  if (kind == TopologyKind::kFBfly) {
    for (PortId p = 0; p < radix_; ++p) {
      dims_[p] = p < cols - 1                ? PortDimension::kX
                 : p < (cols - 1) + (rows - 1) ? PortDimension::kY
                                              : PortDimension::kLocal;
    }
  } else {
    for (PortId p = 0; p < radix_; ++p) {
      dims_[p] = p <= kWest    ? PortDimension::kX
                 : p <= kSouth ? PortDimension::kY
                               : PortDimension::kLocal;
    }
  }

  const bool y_first =
      (kind == TopologyKind::kMesh || kind == TopologyKind::kCMesh) &&
      topo.MeshOrder() == MeshRouteOrder::kYX;
  table_.Reset(num_routers, num_nodes);
  for (RouterId r = 0; r < num_routers; ++r) {
    for (NodeId dst = 0; dst < num_nodes; ++dst) {
      table_.Set(r, dst, DorPortFor(topo, r, dst, y_first));
    }
  }

  if (torus_split_) {
    dateline_bit_.assign(static_cast<std::size_t>(num_routers) * radix_, 0);
    for (RouterId r = 0; r < num_routers; ++r) {
      const int col = r % cols, row = r / cols;
      std::uint8_t* bits = &dateline_bit_[static_cast<std::size_t>(r) * radix_];
      // Each ring's dateline is its wrap link: col N-1 -> 0 going East,
      // col 0 -> N-1 going West, and likewise for the rows. Ejection ports
      // never set a bit.
      if (col == cols - 1) bits[kEast] = kDatelineXCrossed;
      if (col == 0) bits[kWest] = kDatelineXCrossed;
      if (row == rows - 1) bits[kNorth] = kDatelineYCrossed;
      if (row == 0) bits[kSouth] = kDatelineYCrossed;
    }
  }
}

VcRange DorRouting::AllowedVcRange(PortId out_port, std::uint8_t state,
                                   int vcs_per_class) const {
  if (!torus_split_ || dims_[out_port] == PortDimension::kLocal) {
    return VcRange{0, vcs_per_class};
  }
  VIXNOC_CHECK(vcs_per_class >= 2);
  const std::uint8_t bit = dims_[out_port] == PortDimension::kX
                               ? kDatelineXCrossed
                               : kDatelineYCrossed;
  const int half = vcs_per_class / 2;
  return (state & bit) ? VcRange{half, vcs_per_class} : VcRange{0, half};
}

std::uint64_t DorRouting::Fingerprint() const {
  std::uint64_t h = Fnv1a64(Name(), std::strlen(Name()));
  h = table_.Fingerprint(h);
  if (!dims_.empty()) {
    static_assert(sizeof(PortDimension) == sizeof(int) ||
                  sizeof(PortDimension) == 1);
    h = Fnv1a64(dims_.data(), dims_.size() * sizeof(PortDimension), h);
  }
  if (!dateline_bit_.empty()) {
    h = Fnv1a64(dateline_bit_.data(), dateline_bit_.size(), h);
  }
  return h;
}

}  // namespace vixnoc
