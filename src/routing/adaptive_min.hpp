// Minimal-adaptive routing with escape VCs (Duato's protocol).
//
// At each hop a packet may take either minimal direction (the DOR output or
// the other dimension's minimal output) on the *adaptive* VCs of its
// message-class partition, selected by the router from local credit state.
// Deadlock freedom comes from the escape sub-network, which is always in
// the candidate set: VC 0 per class (mesh/cmesh/fbfly) or the dateline VC
// pair {0, 1} (torus) running plain DOR. A packet that finds no adaptive
// VC free requests the escape VC, and the escape network's
// channel-dependency graph is acyclic (XY order / one-X-then-one-Y /
// datelines), so some packet can always advance.
//
// VC budget per message class: >= 2 (1 escape + >= 1 adaptive), or >= 3 on
// the torus (2 dateline escape VCs + >= 1 adaptive). On the torus the
// adaptive choice is restricted to dimension *order* — each dimension still
// travels DOR's minimal ring direction — so every adaptive hop stays
// minimal and the dateline state remains meaningful on fallback.
#pragma once

#include <cstdint>

#include "routing/dor.hpp"
#include "routing/route_table.hpp"
#include "routing/routing_algorithm.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

class AdaptiveMinRouting final : public RoutingAlgorithm {
 public:
  explicit AdaptiveMinRouting(const Topology& topo);

  const char* Name() const override { return "adaptive_min"; }
  bool IsAdaptive() const override { return true; }

  /// Escape (DOR) route: advisory lookahead + NI injection stamping.
  PortId Route(RouterId router, NodeId dst) const override {
    return dor_.Route(router, dst);
  }
  PortDimension DimensionOf(PortId port) const override {
    return dor_.DimensionOf(port);
  }
  std::uint8_t NextDatelineState(RouterId router, PortId out_port,
                                 std::uint8_t state) const override {
    return dor_.NextDatelineState(router, out_port, state);
  }
  /// Conservative single-route restriction: the escape range (callers that
  /// do not enumerate Candidates() must stay inside the acyclic network).
  VcRange AllowedVcRange(PortId out_port, std::uint8_t state,
                         int vcs_per_class) const override;

  int Candidates(RouterId router, NodeId dst, std::uint8_t state,
                 int vcs_per_class, RouteCandidate* out) const override;

  std::uint64_t Fingerprint() const override;

  /// Smallest legal per-message-class VC count (3 on torus, else 2).
  int MinVcsPerClass() const { return dor_.torus_datelines() ? 3 : 2; }

 private:
  VcRange EscapeRange(PortId out_port, std::uint8_t next_state) const;

  DorRouting dor_;
  /// Per (router, dst): the non-DOR minimal output, kInvalidPort when the
  /// destination is aligned with the current router in one dimension (or
  /// co-located) and DOR's output is the only minimal one.
  RouteTable alt_;
};

}  // namespace vixnoc
