// Dimension-order routing (DOR), table-driven: the deterministic baseline
// for every supported topology, bitwise-identical to the geometry-inline
// routing the topologies used to carry themselves.
//
//  * mesh / cmesh: XY (or YX) order; port 0=East, 1=West, 2=North, 3=South.
//  * torus: minimal ring in each dimension; exactly-half-way ties split by
//    destination-node parity; dateline VC classes (pre-/post-crossing
//    halves of each message class's partition) break ring deadlock.
//  * flattened butterfly: at most one X hop, then at most one Y hop.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/route_table.hpp"
#include "routing/routing_algorithm.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

/// Dateline state bits, one per dimension (torus only): routing is
/// dimension-ordered so the bits never interact, but keeping them separate
/// means an X crossing cannot leak into the Y ring's class selection.
inline constexpr std::uint8_t kDatelineXCrossed = 1;
inline constexpr std::uint8_t kDatelineYCrossed = 2;

/// The dimension-order port at `router` toward node `dst`, with the
/// dimension priority chosen by `y_first`. This is the pure geometry rule
/// the DOR table is built from; adaptive_min reuses it with the priority
/// flipped to enumerate the other minimal output.
PortId DorPortFor(const Topology& topo, RouterId router, NodeId dst,
                  bool y_first);

class DorRouting : public RoutingAlgorithm {
 public:
  explicit DorRouting(const Topology& topo);

  const char* Name() const override { return "dor"; }
  PortId Route(RouterId router, NodeId dst) const override {
    return table_.At(router, dst);
  }
  PortDimension DimensionOf(PortId port) const override {
    return dims_[port];
  }
  std::uint8_t NextDatelineState(RouterId router, PortId out_port,
                                 std::uint8_t state) const override {
    if (!torus_split_) return state;
    return static_cast<std::uint8_t>(
        state | dateline_bit_[static_cast<std::size_t>(router) * radix_ +
                              out_port]);
  }
  VcRange AllowedVcRange(PortId out_port, std::uint8_t state,
                         int vcs_per_class) const override;
  std::uint64_t Fingerprint() const override;

  const RouteTable& table() const { return table_; }
  /// True when this instance applies torus dateline VC splitting.
  bool torus_datelines() const { return torus_split_; }

 private:
  int radix_ = 0;
  bool torus_split_ = false;
  RouteTable table_;
  std::vector<PortDimension> dims_;
  /// Per (router, out_port): dateline bit OR-ed into the packet state when
  /// the hop crosses that dimension's wrap link (torus only; else empty).
  std::vector<std::uint8_t> dateline_bit_;
};

}  // namespace vixnoc
