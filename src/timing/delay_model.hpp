// Circuit-delay models for the router pipeline stages (paper §2.4).
//
// The paper obtained these numbers by synthesizing the Stanford open-source
// router RTL with Synopsys DC on a commercial 45nm SOI library and by SPICE
// simulation of 128-bit matrix crossbars. Neither toolchain is available
// here, so we substitute parametric models whose functional forms follow
// the circuits and whose constants are least-squares fitted to the paper's
// Table 1 anchors (see DESIGN.md §2):
//
//   * VA: per-output-VC arbiters over P*v requesters; delay grows with the
//     arbiter tree depth: va(P, v) = u0 + u1 * log2(P*v).
//   * SA (separable, k virtual inputs): an input arbiter over v/k VCs in
//     series with an output arbiter over k*P crossbar inputs:
//     sa(P, v, k) = t0 + s_in * log2(v/k) + s_out * log2(k*P).
//   * Crossbar (wire-dominated, I inputs x O outputs, 128-bit):
//     xbar(I, O) = c0 + a*I + b*O + d*I*O — the bilinear term captures the
//     quadratic wire-area growth of a matrix crossbar.
//
// Fit quality against Table 1: every anchor reproduced within 1.1%.
//
// Wavefront delay is modelled as the paper's measured +39% over separable
// (Table 3); augmenting-path allocation is combinational-infeasible — we
// expose a lower-bound estimate (sequential augmentation steps) and a
// feasibility predicate that reports "infeasible" exactly as Table 3 does.
#pragma once

#include <string>

namespace vixnoc::timing {

/// Virtual-channel allocation stage delay in picoseconds.
double VaDelayPs(int radix, int num_vcs);

/// Separable switch-allocation stage delay in picoseconds; `num_vins` is 1
/// for the baseline allocator, 2 for 1:2 VIX.
double SaDelayPs(int radix, int num_vcs, int num_vins);

/// Crossbar traversal delay in picoseconds for an `inputs` x `outputs`
/// 128-bit matrix crossbar.
double XbarDelayPs(int inputs, int outputs);

/// Wavefront allocator delay (Table 3: +39% over separable).
double WavefrontDelayPs(int radix, int num_vcs);

/// Lower-bound estimate of a combinational maximum-matching (augmenting
/// path) allocator: up to P sequential augmentation phases, each a P-deep
/// search. Far beyond a router cycle for any practical radix.
double AugmentingPathDelayPs(int radix, int num_vcs);

/// SERENADE randomized matching: one request/propose exchange (an output
/// arbitration level) plus O(log2 P) parallel knotting rounds, each a
/// pointer-jump exchange comparable to one arbitration level. This is the
/// logarithmic scaling that keeps matching-quality allocation plausible at
/// radix 16-64 where AP's serial augmentation is hopeless.
double SerenadeDelayPs(int radix, int num_vcs);

/// Router cycle time: the slowest pipeline stage (VA and SA dominate; the
/// crossbar has slack — the core feasibility argument for VIX).
double RouterCyclePs(int radix, int num_vcs, int num_vins);

/// True when the allocator delay fits within the baseline router cycle.
bool AllocatorFeasible(double alloc_delay_ps, int radix, int num_vcs);

struct StageDelays {
  double va_ps = 0.0;
  double sa_ps = 0.0;
  double xbar_ps = 0.0;
};

/// All three modelled stages for a router of `radix` with `num_vins`
/// virtual inputs per port (Table 1 rows).
StageDelays RouterStageDelays(int radix, int num_vcs, int num_vins);

}  // namespace vixnoc::timing
