#include "timing/delay_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace vixnoc::timing {

namespace {

// Least-squares fits to the paper's Table 1 (see header). Units: ps.
// VA: u0 + u1 * log2(P*v)
constexpr double kVaBase = 6.2106;
constexpr double kVaPerLevel = 59.8441;
// SA: t0 + s_in * log2(v/k) + s_out * log2(k*P)
constexpr double kSaBase = 25.0613;
constexpr double kSaInPerLevel = 47.1608;
constexpr double kSaOutPerLevel = 57.1608;
// Xbar: c0 + a*I + b*O + d*I*O
constexpr double kXbC0 = 136.5355;
constexpr double kXbIn = 3.6992;
constexpr double kXbOut = -1.8906;
constexpr double kXbInOut = 0.8386;
// Table 3: wavefront measured 390ps vs separable 280ps at radix 5.
constexpr double kWavefrontRatio = 390.0 / 280.0;
// Augmenting path: per sequential augmentation step, a request-propagate-
// grant chain comparable to one output arbitration level.
constexpr double kApStepPs = 57.1608;

}  // namespace

double VaDelayPs(int radix, int num_vcs) {
  VIXNOC_CHECK(radix >= 2 && num_vcs >= 1);
  return kVaBase + kVaPerLevel * std::log2(static_cast<double>(radix) *
                                           num_vcs);
}

double SaDelayPs(int radix, int num_vcs, int num_vins) {
  VIXNOC_CHECK(radix >= 2 && num_vcs >= 1 && num_vins >= 1);
  VIXNOC_CHECK(num_vcs % num_vins == 0);
  const double in_levels =
      std::log2(static_cast<double>(num_vcs) / num_vins);
  const double out_levels =
      std::log2(static_cast<double>(num_vins) * radix);
  return kSaBase + kSaInPerLevel * std::max(0.0, in_levels) +
         kSaOutPerLevel * out_levels;
}

double XbarDelayPs(int inputs, int outputs) {
  VIXNOC_CHECK(inputs >= 2 && outputs >= 2);
  return kXbC0 + kXbIn * inputs + kXbOut * outputs +
         kXbInOut * inputs * outputs;
}

double WavefrontDelayPs(int radix, int num_vcs) {
  return kWavefrontRatio * SaDelayPs(radix, num_vcs, 1);
}

double AugmentingPathDelayPs(int radix, int num_vcs) {
  // P augmentation phases, each walking up to P alternating edges, on top
  // of building the request matrix (one input-arbitration level).
  return SaDelayPs(radix, num_vcs, 1) +
         kApStepPs * static_cast<double>(radix) * radix;
}

double SerenadeDelayPs(int radix, int num_vcs) {
  // One propose/accept exchange to form the random matching, then
  // ceil(log2 P) + 1 knotting rounds of pointer-jump exchanges, each
  // charged as one output-arbitration chain (SERENADE's O(log N) depth).
  VIXNOC_CHECK(radix >= 2 && num_vcs >= 1);
  const double rounds = std::ceil(std::log2(static_cast<double>(radix))) + 1;
  return SaDelayPs(radix, num_vcs, 1) + kApStepPs * rounds;
}

double RouterCyclePs(int radix, int num_vcs, int num_vins) {
  const StageDelays d = RouterStageDelays(radix, num_vcs, num_vins);
  return std::max({d.va_ps, d.sa_ps, d.xbar_ps});
}

bool AllocatorFeasible(double alloc_delay_ps, int radix, int num_vcs) {
  // Feasible if it does not stretch the baseline router cycle, which the
  // VA stage sets for every configuration in Table 1.
  return alloc_delay_ps <= RouterCyclePs(radix, num_vcs, 1);
}

StageDelays RouterStageDelays(int radix, int num_vcs, int num_vins) {
  StageDelays d;
  d.va_ps = VaDelayPs(radix, num_vcs);
  d.sa_ps = SaDelayPs(radix, num_vcs, num_vins);
  d.xbar_ps = XbarDelayPs(radix * num_vins, radix);
  return d;
}

}  // namespace vixnoc::timing
