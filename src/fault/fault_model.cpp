#include "fault/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vixnoc {

namespace {

/// SplitMix64 finalizer: full-avalanche mix for the corruption hash.
std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Seeded partial Fisher–Yates: the first `count` elements of `pool` after
/// the call are a uniform sample without replacement.
template <typename T>
void SampleFront(std::vector<T>* pool, std::size_t count, Rng* rng) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng->NextBounded(pool->size() - i));
    std::swap((*pool)[i], (*pool)[j]);
  }
}

std::size_t CountFor(double rate, std::size_t population) {
  return static_cast<std::size_t>(
      std::llround(rate * static_cast<double>(population)));
}

}  // namespace

FaultModel::FaultModel(const Topology& topology, const FaultConfig& config,
                       std::uint64_t seed)
    : config_(config), seed_(seed), radix_(topology.Radix()) {
  VIXNOC_REQUIRE(config.link_down_rate >= 0.0 && config.link_down_rate <= 1.0,
                 "link_down_rate must be in [0,1], got %g",
                 config.link_down_rate);
  VIXNOC_REQUIRE(config.transient_rate >= 0.0 && config.transient_rate <= 1.0,
                 "transient_rate must be in [0,1], got %g",
                 config.transient_rate);
  VIXNOC_REQUIRE(
      config.router_stall_rate >= 0.0 && config.router_stall_rate <= 1.0,
      "router_stall_rate must be in [0,1], got %g", config.router_stall_rate);
  VIXNOC_REQUIRE(
      config.corruption_rate >= 0.0 && config.corruption_rate <= 1.0,
      "corruption_rate must be in [0,1], got %g", config.corruption_rate);
  if (config.transient_rate > 0.0) {
    VIXNOC_REQUIRE(config.transient_period >= 1 &&
                       config.transient_duration >= 1 &&
                       config.transient_duration < config.transient_period,
                   "transient outage needs 1 <= duration < period, got "
                   "duration=%llu period=%llu",
                   static_cast<unsigned long long>(config.transient_duration),
                   static_cast<unsigned long long>(config.transient_period));
  }
  if (config.router_stall_rate > 0.0) {
    VIXNOC_REQUIRE(config.stall_period >= 1 && config.stall_duration >= 1 &&
                       config.stall_duration < config.stall_period,
                   "router stall needs 1 <= duration < period, got "
                   "duration=%llu period=%llu",
                   static_cast<unsigned long long>(config.stall_duration),
                   static_cast<unsigned long long>(config.stall_period));
  }

  const int num_routers = topology.NumRouters();
  permanent_mask_.assign(static_cast<std::size_t>(num_routers) * radix_,
                         false);

  // Candidate faults cover inter-router channels only: failing an NI link
  // trivially severs a node and says nothing interesting about the fabric.
  std::vector<std::pair<RouterId, PortId>> candidates;
  for (RouterId r = 0; r < num_routers; ++r) {
    const std::vector<OutputLinkInfo> links = topology.LinksFor(r);
    for (PortId o = 0; o < radix_; ++o) {
      if (links[o].neighbor >= 0) candidates.emplace_back(r, o);
    }
  }

  for (const auto& [r, o] : config.forced_link_down) {
    VIXNOC_REQUIRE(r >= 0 && r < num_routers && o >= 0 && o < radix_,
                   "forced_link_down names router %d port %d outside the "
                   "%d-router radix-%d topology",
                   r, o, num_routers, radix_);
    VIXNOC_REQUIRE(topology.LinksFor(r)[o].neighbor >= 0,
                   "forced_link_down (router %d, port %d) is not an "
                   "inter-router link",
                   r, o);
  }

  Rng rng(seed_);

  // Permanent link faults: sampled set plus the forced list (deduplicated).
  const std::size_t num_permanent =
      std::min(CountFor(config.link_down_rate, candidates.size()),
               candidates.size());
  SampleFront(&candidates, num_permanent, &rng);
  permanent_down_.assign(candidates.begin(),
                         candidates.begin() + num_permanent);
  for (const auto& link : config.forced_link_down) {
    if (std::find(permanent_down_.begin(), permanent_down_.end(), link) ==
        permanent_down_.end()) {
      permanent_down_.push_back(link);
    }
  }
  for (const auto& [r, o] : permanent_down_) {
    permanent_mask_[static_cast<std::size_t>(r) * radix_ + o] = true;
  }

  // Transient outages are drawn from the links that are still alive.
  std::vector<std::pair<RouterId, PortId>> alive;
  for (const auto& link : candidates) {
    if (!permanent_mask_[static_cast<std::size_t>(link.first) * radix_ +
                         link.second]) {
      alive.push_back(link);
    }
  }
  const std::size_t num_transient =
      std::min(CountFor(config.transient_rate, candidates.size()),
               alive.size());
  SampleFront(&alive, num_transient, &rng);
  for (std::size_t i = 0; i < num_transient; ++i) {
    transient_links_.push_back(
        TransientLink{alive[i].first, alive[i].second,
                      rng.NextBounded(config.transient_period)});
  }

  const std::size_t num_stalls = std::min(
      CountFor(config.router_stall_rate, static_cast<std::size_t>(num_routers)),
      static_cast<std::size_t>(num_routers));
  std::vector<RouterId> routers(num_routers);
  for (RouterId r = 0; r < num_routers; ++r) routers[r] = r;
  SampleFront(&routers, num_stalls, &rng);
  for (std::size_t i = 0; i < num_stalls; ++i) {
    stalls_.push_back(
        StallWindow{routers[i], rng.NextBounded(config.stall_period)});
  }

  // Map the corruption rate onto a straight u64 comparison against the
  // mixed hash (rate 1.0 saturates to "always").
  corruption_threshold_ = static_cast<std::uint64_t>(
      std::ldexp(config.corruption_rate, 64) >= std::ldexp(1.0, 64)
          ? ~0ull
          : std::ldexp(config.corruption_rate, 64));
}

bool FaultModel::CorruptsTraversal(RouterId router, PortId out_port,
                                   Cycle t) const {
  if (corruption_threshold_ == 0) return false;
  std::uint64_t h = seed_ ^ 0x9e3779b97f4a7c15ull;
  h = Mix64(h ^ (static_cast<std::uint64_t>(router) << 32 ^
                 static_cast<std::uint64_t>(out_port)));
  h = Mix64(h ^ t);
  return h < corruption_threshold_;
}

}  // namespace vixnoc
