// Deterministic fault injection for network simulations.
//
// A FaultModel is built once per simulation point from the topology, a
// FaultConfig, and a seed. The entire fault schedule — which links are
// down, when transient outages start and end, which routers stall, which
// link traversals corrupt a flit — is a pure function of those inputs:
// identical at any thread count, on any platform, in any execution order.
//
// Fault semantics are chosen so that credits and buffers stay consistent:
//  * link-down (permanent or transient) blocks *new* traversals of the
//    link; flits already on the wire arrive, buffered flits wait, credits
//    are never lost. Permanent faults exist from cycle 0, so routing
//    (FaultAwareRouting) can detour around them consistently with
//    lookahead route computation.
//  * router-stall freezes a router's control pipeline (no VA/SA/ST) for a
//    window; incoming flits and credits still land in its buffers, which
//    the credit protocol guarantees have space.
//  * corruption marks a flit's payload corrupted as it traverses a link;
//    the flit still flows and is delivered, and the destination NI reports
//    the corrupted packet (end-to-end detection).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

/// Fault-injection knobs carried by NetworkSimConfig. All rates are
/// fractions in [0, 1]; everything defaults to "no faults", in which case
/// the simulator takes none of the fault paths (zero cost).
struct FaultConfig {
  /// Fraction of inter-router links permanently down from cycle 0.
  /// Routing detours around them where a minimal detour exists; packets
  /// for unreachable destinations are reported, not injected.
  double link_down_rate = 0.0;

  /// Fraction of inter-router links with periodic transient outages: each
  /// such link goes down for `transient_duration` cycles once every
  /// `transient_period` cycles, at a seeded phase. Routing does not change;
  /// traffic waits for the repair.
  double transient_rate = 0.0;
  Cycle transient_period = 2'000;
  Cycle transient_duration = 200;

  /// Fraction of routers whose control pipeline periodically freezes for
  /// `stall_duration` cycles once every `stall_period` cycles.
  double router_stall_rate = 0.0;
  Cycle stall_period = 2'000;
  Cycle stall_duration = 100;

  /// Per-link-traversal probability that a flit's payload is corrupted
  /// (decided by a seeded hash of (router, port, cycle) — deterministic
  /// and order-independent).
  double corruption_rate = 0.0;

  /// Explicit permanent link-down faults (router, out_port), applied in
  /// addition to the sampled `link_down_rate` set. For targeted studies
  /// and tests.
  std::vector<std::pair<RouterId, PortId>> forced_link_down;

  /// Fault-schedule seed; 0 derives it from the simulation seed so every
  /// sweep point gets an independent schedule by default.
  std::uint64_t seed = 0;

  bool Enabled() const {
    return link_down_rate > 0.0 || transient_rate > 0.0 ||
           router_stall_rate > 0.0 || corruption_rate > 0.0 ||
           !forced_link_down.empty();
  }
};

class FaultModel {
 public:
  /// Samples the fault schedule. Throws SimError on invalid config
  /// (rates outside [0,1], durations not below their period, forced links
  /// naming nonexistent or NI-attached ports).
  FaultModel(const Topology& topology, const FaultConfig& config,
             std::uint64_t seed);

  const FaultConfig& config() const { return config_; }
  std::uint64_t seed() const { return seed_; }

  struct TransientLink {
    RouterId router;
    PortId out_port;
    Cycle phase;  ///< outage starts at phase + k * transient_period
  };
  struct StallWindow {
    RouterId router;
    Cycle phase;  ///< stall starts at phase + k * stall_period
  };

  /// Permanently-down links, as (router, out_port) directed channels.
  const std::vector<std::pair<RouterId, PortId>>& permanent_down() const {
    return permanent_down_;
  }
  const std::vector<TransientLink>& transient_links() const {
    return transient_links_;
  }
  const std::vector<StallWindow>& stalls() const { return stalls_; }

  bool LinkPermanentlyDown(RouterId router, PortId out_port) const {
    return permanent_mask_[static_cast<std::size_t>(router) * radix_ +
                           out_port];
  }

  bool TransientDownAt(const TransientLink& link, Cycle t) const {
    return (t + config_.transient_period - link.phase) %
               config_.transient_period <
           config_.transient_duration;
  }
  bool StalledAt(const StallWindow& stall, Cycle t) const {
    return (t + config_.stall_period - stall.phase) % config_.stall_period <
           config_.stall_duration;
  }

  /// Whether the flit traversing (router, out_port) at cycle t is
  /// corrupted. Stateless seeded hash: at most one flit crosses a given
  /// link per cycle, so the triple identifies the traversal.
  bool CorruptsTraversal(RouterId router, PortId out_port, Cycle t) const;

 private:
  FaultConfig config_;
  std::uint64_t seed_;
  int radix_;
  std::vector<std::pair<RouterId, PortId>> permanent_down_;
  std::vector<TransientLink> transient_links_;
  std::vector<StallWindow> stalls_;
  std::vector<bool> permanent_mask_;  // routers * radix
  std::uint64_t corruption_threshold_ = 0;  // rate mapped to a u64 compare
};

}  // namespace vixnoc
