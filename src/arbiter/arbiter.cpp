#include "arbiter/arbiter.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

int RoundRobinArbiter::Pick(BitSpan requests) const {
  VIXNOC_DCHECK(requests.size() == n_);
  return requests.FirstFrom(next_priority_);
}

void RoundRobinArbiter::Commit(int winner) {
  VIXNOC_DCHECK(winner >= 0 && winner < n_);
  next_priority_ = (winner + 1) % n_;
}

void RoundRobinArbiter::SaveState(SnapshotWriter& w) const {
  w.I32(next_priority_);
}

void RoundRobinArbiter::LoadState(SnapshotReader& r) {
  const int p = r.I32();
  VIXNOC_REQUIRE(p >= 0 && p < n_,
                 "restored round-robin pointer %d outside [0, %d)", p, n_);
  next_priority_ = p;
}

MatrixArbiter::MatrixArbiter(int num_requesters)
    : Arbiter(num_requesters),
      words_(bits::WordCount(num_requesters)),
      beaters_of_(static_cast<std::size_t>(num_requesters) * words_) {
  Reset();
}

void MatrixArbiter::Reset() {
  // Initial total order: lower index beats higher index, so requester i is
  // beaten exactly by requesters 0..i-1.
  for (int i = 0; i < n_; ++i) {
    std::uint64_t* col = beaters_of_.data() +
                         static_cast<std::size_t>(i) * words_;
    for (int w = 0; w < words_; ++w) {
      const int lo = w * bits::kWordBits;
      if (i <= lo) {
        col[w] = 0;
      } else if (i >= lo + bits::kWordBits) {
        col[w] = ~std::uint64_t{0};
      } else {
        col[w] = (std::uint64_t{1} << (i - lo)) - 1;
      }
    }
  }
}

int MatrixArbiter::Pick(BitSpan requests) const {
  VIXNOC_DCHECK(requests.size() == n_);
  // Winner: the lowest-index requester not beaten by any other requester.
  const std::uint64_t* req = requests.words();
  int winner = -1;
  requests.ForEach([&](int i) {
    if (winner >= 0) return;
    const std::uint64_t* col = beaters_of_.data() +
                               static_cast<std::size_t>(i) * words_;
    for (int w = 0; w < words_; ++w) {
      if (req[w] & col[w]) return;
    }
    winner = i;
  });
  return winner;
}

void MatrixArbiter::Commit(int winner) {
  VIXNOC_DCHECK(winner >= 0 && winner < n_);
  // The winner becomes lowest priority: it no longer beats anyone (clear its
  // bit in every other column) and everyone beats it (its own column becomes
  // all-ones minus itself).
  const int ww = winner / bits::kWordBits;
  const std::uint64_t wbit = std::uint64_t{1} << (winner % bits::kWordBits);
  for (int i = 0; i < n_; ++i) {
    beaters_of_[static_cast<std::size_t>(i) * words_ + ww] &= ~wbit;
  }
  std::uint64_t* col = beaters_of_.data() +
                       static_cast<std::size_t>(winner) * words_;
  for (int w = 0; w < words_; ++w) col[w] = ~std::uint64_t{0};
  col[words_ - 1] = bits::TailMask(n_);
  col[ww] &= ~wbit;
}

void MatrixArbiter::SaveState(SnapshotWriter& w) const {
  // Keep the pre-bitmask snapshot layout: the full row-major pri_[i][j]
  // matrix as VecBool. pri_[i][j] ("i beats j") == bit i of column j.
  std::vector<bool> pri(static_cast<std::size_t>(n_) * n_);
  for (int j = 0; j < n_; ++j) {
    const std::uint64_t* col = beaters_of_.data() +
                               static_cast<std::size_t>(j) * words_;
    for (int i = 0; i < n_; ++i) {
      pri[static_cast<std::size_t>(i) * n_ + j] =
          (col[i / bits::kWordBits] >> (i % bits::kWordBits)) & 1;
    }
  }
  w.VecBool(pri);
}

void MatrixArbiter::LoadState(SnapshotReader& r) {
  std::vector<bool> pri = r.VecBool();
  VIXNOC_REQUIRE(pri.size() == static_cast<std::size_t>(n_) * n_,
                 "restored matrix arbiter state has %zu entries, expected %zu",
                 pri.size(), static_cast<std::size_t>(n_) * n_);
  std::fill(beaters_of_.begin(), beaters_of_.end(), 0);
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (pri[static_cast<std::size_t>(i) * n_ + j]) {
        beaters_of_[static_cast<std::size_t>(j) * words_ +
                    i / bits::kWordBits] |=
            std::uint64_t{1} << (i % bits::kWordBits);
      }
    }
  }
}

std::unique_ptr<Arbiter> MakeArbiter(ArbiterKind kind, int num_requesters) {
  switch (kind) {
    case ArbiterKind::kRoundRobin:
      return std::make_unique<RoundRobinArbiter>(num_requesters);
    case ArbiterKind::kMatrix:
      return std::make_unique<MatrixArbiter>(num_requesters);
  }
  // Setup-path error policy (common/error.hpp): an out-of-range kind (e.g.
  // a bad cast from parsed input) is a recoverable configuration error, not
  // corrupted in-memory state — throw SimError so sweep drivers can mark
  // the point failed instead of aborting the whole process.
  VIXNOC_REQUIRE(false, "unknown arbiter kind %d", static_cast<int>(kind));
  return nullptr;
}

}  // namespace vixnoc
