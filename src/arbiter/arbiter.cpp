#include "arbiter/arbiter.hpp"

#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

int RoundRobinArbiter::Pick(const std::vector<bool>& requests) const {
  VIXNOC_DCHECK(static_cast<int>(requests.size()) == n_);
  for (int off = 0; off < n_; ++off) {
    const int i = (next_priority_ + off) % n_;
    if (requests[i]) return i;
  }
  return -1;
}

void RoundRobinArbiter::Commit(int winner) {
  VIXNOC_DCHECK(winner >= 0 && winner < n_);
  next_priority_ = (winner + 1) % n_;
}

void RoundRobinArbiter::SaveState(SnapshotWriter& w) const {
  w.I32(next_priority_);
}

void RoundRobinArbiter::LoadState(SnapshotReader& r) {
  const int p = r.I32();
  VIXNOC_REQUIRE(p >= 0 && p < n_,
                 "restored round-robin pointer %d outside [0, %d)", p, n_);
  next_priority_ = p;
}

MatrixArbiter::MatrixArbiter(int num_requesters)
    : Arbiter(num_requesters), pri_(static_cast<std::size_t>(n_) * n_) {
  Reset();
}

void MatrixArbiter::Reset() {
  // Initial total order: lower index beats higher index.
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      pri_[static_cast<std::size_t>(i) * n_ + j] = i < j;
    }
  }
}

int MatrixArbiter::Pick(const std::vector<bool>& requests) const {
  VIXNOC_DCHECK(static_cast<int>(requests.size()) == n_);
  // Winner: a requester not beaten by any other requester.
  for (int i = 0; i < n_; ++i) {
    if (!requests[i]) continue;
    bool beaten = false;
    for (int j = 0; j < n_; ++j) {
      if (j == i || !requests[j]) continue;
      if (pri_[static_cast<std::size_t>(j) * n_ + i]) {
        beaten = true;
        break;
      }
    }
    if (!beaten) return i;
  }
  return -1;
}

void MatrixArbiter::Commit(int winner) {
  VIXNOC_DCHECK(winner >= 0 && winner < n_);
  // The winner becomes lowest priority: clear its row, set its column.
  for (int j = 0; j < n_; ++j) {
    if (j == winner) continue;
    pri_[static_cast<std::size_t>(winner) * n_ + j] = false;
    pri_[static_cast<std::size_t>(j) * n_ + winner] = true;
  }
}

void MatrixArbiter::SaveState(SnapshotWriter& w) const { w.VecBool(pri_); }

void MatrixArbiter::LoadState(SnapshotReader& r) {
  std::vector<bool> pri = r.VecBool();
  VIXNOC_REQUIRE(pri.size() == pri_.size(),
                 "restored matrix arbiter state has %zu entries, expected %zu",
                 pri.size(), pri_.size());
  pri_ = std::move(pri);
}

std::unique_ptr<Arbiter> MakeArbiter(ArbiterKind kind, int num_requesters) {
  switch (kind) {
    case ArbiterKind::kRoundRobin:
      return std::make_unique<RoundRobinArbiter>(num_requesters);
    case ArbiterKind::kMatrix:
      return std::make_unique<MatrixArbiter>(num_requesters);
  }
  // Setup-path error policy (common/error.hpp): an out-of-range kind (e.g.
  // a bad cast from parsed input) is a recoverable configuration error, not
  // corrupted in-memory state — throw SimError so sweep drivers can mark
  // the point failed instead of aborting the whole process.
  VIXNOC_REQUIRE(false, "unknown arbiter kind %d", static_cast<int>(kind));
  return nullptr;
}

}  // namespace vixnoc
