// Single-resource arbiters used as building blocks of the switch allocators.
//
// An arbiter owns a grant policy over N requesters. Each cycle the caller
// presents a request vector and receives the index of the winner (or -1 when
// nothing requested). State (rotating priority / LRG matrix) only advances
// when the caller commits the grant via `Commit`, mirroring hardware where a
// speculative grant that is later killed must not rotate the priority.
//
// Request vectors are bitmasks (`BitSpan`, one uint64_t per 64 requesters):
// the priority search is a masked rotate + ctz rather than an element scan,
// but the winner for any given (state, requests) pair is identical to the
// original element-at-a-time implementations (tests/reference_alloc.hpp
// keeps those and tests/alloc_equiv_test.cpp checks the equivalence).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/request_matrix.hpp"
#include "common/check.hpp"

namespace vixnoc {

class SnapshotReader;
class SnapshotWriter;

class Arbiter {
 public:
  explicit Arbiter(int num_requesters) : n_(num_requesters) {
    VIXNOC_CHECK(num_requesters > 0);
  }
  virtual ~Arbiter() = default;

  Arbiter(const Arbiter&) = delete;
  Arbiter& operator=(const Arbiter&) = delete;

  int NumRequesters() const { return n_; }

  /// Pick a winner among `requests` (size == NumRequesters()). Returns the
  /// winning index, or -1 if no bit is set. Does NOT update internal state.
  virtual int Pick(BitSpan requests) const = 0;

  /// Advance the priority state after `winner` was actually granted.
  virtual void Commit(int winner) = 0;

  /// Reset priority state to the post-construction value.
  virtual void Reset() = 0;

  /// Checkpoint/restore of the priority state (snapshot/snapshot.hpp).
  /// Restoring makes subsequent Pick/Commit sequences bitwise identical to
  /// an arbiter that never stopped.
  virtual void SaveState(SnapshotWriter& w) const = 0;
  virtual void LoadState(SnapshotReader& r) = 0;

 protected:
  int n_;
};

/// Rotating-priority (round-robin) arbiter: the highest priority is the
/// requester just after the previous committed winner. This is the canonical
/// arbiter of separable NoC allocators (Becker & Dally, SC'09).
class RoundRobinArbiter final : public Arbiter {
 public:
  explicit RoundRobinArbiter(int num_requesters) : Arbiter(num_requesters) {}

  int Pick(BitSpan requests) const override;
  void Commit(int winner) override;
  void Reset() override { next_priority_ = 0; }
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;

  int PriorityPointer() const { return next_priority_; }

 private:
  int next_priority_ = 0;
};

/// Matrix arbiter implementing least-recently-granted (LRG) priority, as used
/// by the self-updating switch fabrics the paper cites [20]. Logical state is
/// a strict priority matrix pri_[i][j] ("i beats j"); it is stored by COLUMN
/// — beaters_of_[i] is the bitmask of requesters that beat i — so the Pick
/// test "is requester i beaten by any other requester" is one AND over the
/// request words. Snapshots keep the original row-major VecBool layout.
class MatrixArbiter final : public Arbiter {
 public:
  explicit MatrixArbiter(int num_requesters);

  int Pick(BitSpan requests) const override;
  void Commit(int winner) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;

 private:
  int words_ = 0;  // words per column mask
  // beaters_of_[i * words_ + w]: word w of the "requesters beating i" mask.
  std::vector<std::uint64_t> beaters_of_;
};

enum class ArbiterKind { kRoundRobin, kMatrix };

std::unique_ptr<Arbiter> MakeArbiter(ArbiterKind kind, int num_requesters);

}  // namespace vixnoc
