// Single-resource arbiters used as building blocks of the switch allocators.
//
// An arbiter owns a grant policy over N requesters. Each cycle the caller
// presents a request vector and receives the index of the winner (or -1 when
// nothing requested). State (rotating priority / LRG matrix) only advances
// when the caller commits the grant via `Commit`, mirroring hardware where a
// speculative grant that is later killed must not rotate the priority.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"

namespace vixnoc {

class SnapshotReader;
class SnapshotWriter;

class Arbiter {
 public:
  explicit Arbiter(int num_requesters) : n_(num_requesters) {
    VIXNOC_CHECK(num_requesters > 0);
  }
  virtual ~Arbiter() = default;

  Arbiter(const Arbiter&) = delete;
  Arbiter& operator=(const Arbiter&) = delete;

  int NumRequesters() const { return n_; }

  /// Pick a winner among `requests` (size == NumRequesters()). Returns the
  /// winning index, or -1 if no bit is set. Does NOT update internal state.
  virtual int Pick(const std::vector<bool>& requests) const = 0;

  /// Advance the priority state after `winner` was actually granted.
  virtual void Commit(int winner) = 0;

  /// Reset priority state to the post-construction value.
  virtual void Reset() = 0;

  /// Checkpoint/restore of the priority state (snapshot/snapshot.hpp).
  /// Restoring makes subsequent Pick/Commit sequences bitwise identical to
  /// an arbiter that never stopped.
  virtual void SaveState(SnapshotWriter& w) const = 0;
  virtual void LoadState(SnapshotReader& r) = 0;

 protected:
  int n_;
};

/// Rotating-priority (round-robin) arbiter: the highest priority is the
/// requester just after the previous committed winner. This is the canonical
/// arbiter of separable NoC allocators (Becker & Dally, SC'09).
class RoundRobinArbiter final : public Arbiter {
 public:
  explicit RoundRobinArbiter(int num_requesters) : Arbiter(num_requesters) {}

  int Pick(const std::vector<bool>& requests) const override;
  void Commit(int winner) override;
  void Reset() override { next_priority_ = 0; }
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;

  int PriorityPointer() const { return next_priority_; }

 private:
  int next_priority_ = 0;
};

/// Matrix arbiter implementing least-recently-granted (LRG) priority, as used
/// by the self-updating switch fabrics the paper cites [20]. State is a
/// strict priority matrix: pri_[i][j] == true means i beats j.
class MatrixArbiter final : public Arbiter {
 public:
  explicit MatrixArbiter(int num_requesters);

  int Pick(const std::vector<bool>& requests) const override;
  void Commit(int winner) override;
  void Reset() override;
  void SaveState(SnapshotWriter& w) const override;
  void LoadState(SnapshotReader& r) override;

 private:
  // pri_[i * n_ + j]: requester i has priority over requester j.
  std::vector<bool> pri_;
};

enum class ArbiterKind { kRoundRobin, kMatrix };

std::unique_ptr<Arbiter> MakeArbiter(ArbiterKind kind, int num_requesters);

}  // namespace vixnoc
