#include "common/error.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/check.hpp"

namespace vixnoc::detail {

void ThrowSimError(const char* file, int line, const char* fmt, ...) {
  char body[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);

  char full[768];
  if (g_sim_context[0] != '\0') {
    std::snprintf(full, sizeof full, "%s (at %s:%d, while simulating %s)",
                  body, file, line, g_sim_context);
  } else {
    std::snprintf(full, sizeof full, "%s (at %s:%d)", body, file, line);
  }
  throw SimError(full);
}

}  // namespace vixnoc::detail
