// Core scalar types and small helpers shared by every vixnoc module.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace vixnoc {

/// Simulation time, in router clock cycles.
using Cycle = std::uint64_t;

/// Index of a network endpoint (core / NI). 64-node networks use [0, 64).
using NodeId = std::int32_t;

/// Index of a router within a topology.
using RouterId = std::int32_t;

/// Physical port index within a router (input or output side).
using PortId = std::int32_t;

/// Virtual-channel index within a port.
using VcId = std::int32_t;

/// Virtual-input index within a port (VIX sub-group). Baseline routers have
/// exactly one virtual input per port; 1:2 VIX has two; "ideal VIX" has one
/// per VC.
using VinId = std::int32_t;

/// Unique, monotonically increasing packet identifier.
using PacketId = std::uint64_t;

inline constexpr PortId kInvalidPort = -1;
inline constexpr VcId kInvalidVc = -1;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Switch-allocation schemes evaluated in the paper (Section 4.1).
enum class AllocScheme {
  kInputFirst,      ///< Separable input-first (IF) — the baseline.
  kWavefront,       ///< Wavefront (WF), Tamir & Chi.
  kAugmentingPath,  ///< Maximum matching via augmenting paths (AP).
  kVix,             ///< Separable input-first over a 1:2 virtual input crossbar.
  kVixIdeal,        ///< v virtual inputs per port (one per VC): ideal allocation.
  kPacketChaining,  ///< Packet Chaining, SameInput/anyVC scheme.
  kIslip,           ///< Iterative SLIP (extension; not in the paper's main plots).
  kSparoflo,        ///< SPAROFLO-style exposure without virtual inputs (§5).
  kSerenade,        ///< SERENADE randomized knot-decomposition matching (extension).
};

/// Human-readable name used by benches and logs.
std::string ToString(AllocScheme scheme);

/// Topologies studied in the paper, plus the torus extension.
enum class TopologyKind {
  kMesh,   ///< 8x8 mesh, radix-5 routers.
  kCMesh,  ///< 4x4 concentrated mesh, 4 nodes/router, radix-8 routers.
  kFBfly,  ///< 4x4 flattened butterfly, 4 nodes/router, radix-10 routers.
  kTorus,  ///< 8x8 torus, radix-5 routers, dateline VC deadlock avoidance.
};

std::string ToString(TopologyKind kind);

/// Case-insensitive parse of a scheme name ("if", "vix", "wavefront", "wf",
/// "ap", "pc", "islip", "sparoflo", "serenade", "vix-ideal", "ideal").
/// Returns false on unknown input.
bool ParseAllocScheme(const std::string& text, AllocScheme* out);

/// Case-insensitive parse of "mesh" / "cmesh" / "fbfly".
bool ParseTopologyKind(const std::string& text, TopologyKind* out);

}  // namespace vixnoc
