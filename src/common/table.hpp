// Minimal fixed-width ASCII table printer for the bench harnesses, so that
// every reproduced paper table/figure prints in a uniform, diff-able format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace vixnoc {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a row; it must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Render to stdout (or any FILE*).
  void Print(std::FILE* out = stdout) const;

  /// Format helpers used throughout the benches.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(std::uint64_t v);
  static std::string Fmt(std::int64_t v);
  static std::string Pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vixnoc
