#include "common/table.hpp"

#include <algorithm>
#include <cinttypes>

#include "common/check.hpp"
#include "common/error.hpp"

namespace vixnoc {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  VIXNOC_REQUIRE(!header_.empty(), "table header must be non-empty");
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  VIXNOC_REQUIRE(row.size() == header_.size(),
                 "table row has %zu cells but the header has %zu",
                 row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_sep = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      std::fputc('+', out);
      for (std::size_t i = 0; i < width[c] + 2; ++i) std::fputc('-', out);
    }
    std::fputs("+\n", out);
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "| %-*s ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::fputs("|\n", out);
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string TablePrinter::Fmt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string TablePrinter::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace vixnoc
