// Tiny CSV writer so benches and examples can emit machine-readable series
// (e.g. for replotting the paper's figures) alongside their ASCII tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace vixnoc {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Aborts on failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Cells are escaped per RFC 4180 (quotes doubled, fields with commas,
  /// quotes, or newlines wrapped in quotes). Row width must match header.
  void AddRow(const std::vector<std::string>& row);

  const std::string& path() const { return path_; }

 private:
  void WriteRow(const std::vector<std::string>& row);

  std::string path_;
  std::size_t width_;
  std::FILE* file_;
};

}  // namespace vixnoc
