#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace vixnoc {

AsciiPlot::AsciiPlot(int width, int height, std::string x_label,
                     std::string y_label)
    : width_(width),
      height_(height),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {
  VIXNOC_CHECK(width >= 10 && height >= 4);
}

void AsciiPlot::AddSeries(const std::string& name, char marker,
                          std::vector<std::pair<double, double>> points) {
  series_.push_back(Series{name, marker, std::move(points)});
}

void AsciiPlot::Print(std::FILE* out) const {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min, y_min = 0.0, y_max = -x_min;
  bool any = false;
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_max = std::max(y_max, y);
      any = true;
    }
  }
  if (!any) {
    std::fprintf(out, "(empty plot)\n");
    return;
  }
  if (y_max_override_ > 0.0) y_max = y_max_override_;
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (y_max <= y_min) y_max = y_min + 1.0;

  std::vector<std::string> canvas(height_, std::string(width_, ' '));
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      const double yc = std::min(y, y_max);
      const int col = static_cast<int>(
          std::lround((x - x_min) / (x_max - x_min) * (width_ - 1)));
      const int row = static_cast<int>(
          std::lround((yc - y_min) / (y_max - y_min) * (height_ - 1)));
      canvas[height_ - 1 - row][col] = s.marker;
    }
  }

  std::fprintf(out, "  %s\n", y_label_.c_str());
  for (int r = 0; r < height_; ++r) {
    const double y_val =
        y_max - (y_max - y_min) * r / static_cast<double>(height_ - 1);
    std::fprintf(out, "%9.1f |%s\n", y_val, canvas[r].c_str());
  }
  std::fprintf(out, "%9s +", "");
  for (int c = 0; c < width_; ++c) std::fputc('-', out);
  std::fprintf(out, "\n%9s  %-10.3f%*s%.3f   (%s)\n", "", x_min,
               width_ - 18 > 0 ? width_ - 18 : 1, "", x_max,
               x_label_.c_str());
  std::fprintf(out, "%9s  legend:", "");
  for (const Series& s : series_) {
    std::fprintf(out, "  %c=%s", s.marker, s.name.c_str());
  }
  std::fputc('\n', out);
}

}  // namespace vixnoc
