#include "common/stats.hpp"

namespace vixnoc {

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > target) {
      // The overflow bucket covers [num_buckets * width, inf): a midpoint
      // is meaningless there and would silently understate the tail, so
      // report its lower bound — "the quantile is at least this".
      if (i == counts_.size() - 1) {
        return static_cast<double>(i) * width_;
      }
      return (static_cast<double>(i) + 0.5) * width_;
    }
  }
  return static_cast<double>(counts_.size() - 1) * width_;
}

}  // namespace vixnoc
