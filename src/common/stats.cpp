#include "common/stats.hpp"

namespace vixnoc {

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > target) {
      return (static_cast<double>(i) + 0.5) * width_;
    }
  }
  return static_cast<double>(counts_.size()) * width_;
}

}  // namespace vixnoc
