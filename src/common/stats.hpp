// Statistics accumulators used by the simulator and the bench harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace vixnoc {

/// Streaming mean/min/max/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void Reset() { *this = RunningStat{}; }

  std::uint64_t Count() const { return n_; }
  double Sum() const { return sum_; }
  double Mean() const { return n_ == 0 ? 0.0 : mean_; }
  double Min() const { return n_ == 0 ? 0.0 : min_; }
  double Max() const { return n_ == 0 ? 0.0 : max_; }

  double Variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double StdDev() const { return std::sqrt(Variance()); }

  /// Raw accumulator state, for checkpoint/restore. Restoring a captured
  /// state makes subsequent Add() calls bitwise identical to a stat that
  /// never stopped.
  struct State {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State state() const { return {n_, mean_, m2_, sum_, min_, max_}; }
  void set_state(const State& s) {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
    sum_ = s.sum;
    if (n_ == 0) {
      min_ = std::numeric_limits<double>::infinity();
      max_ = -std::numeric_limits<double>::infinity();
    } else {
      min_ = s.min;
      max_ = s.max;
    }
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram for latency distributions.
class Histogram {
 public:
  /// Buckets are [0,w), [w,2w), ... plus one overflow bucket.
  Histogram(double bucket_width, std::size_t num_buckets)
      : width_(bucket_width), counts_(num_buckets + 1, 0) {
    VIXNOC_CHECK(bucket_width > 0.0);
    VIXNOC_CHECK(num_buckets > 0);
  }

  void Add(double x) {
    ++total_;
    if (x < 0) x = 0;
    auto idx = static_cast<std::size_t>(x / width_);
    if (idx >= counts_.size() - 1) idx = counts_.size() - 1;
    ++counts_[idx];
  }

  std::uint64_t TotalCount() const { return total_; }
  std::size_t NumBuckets() const { return counts_.size(); }
  std::uint64_t BucketCount(std::size_t i) const { return counts_[i]; }
  /// Samples that landed at or beyond num_buckets * width. A non-zero count
  /// means quantiles near the tail are lower bounds, not point estimates.
  std::uint64_t OverflowCount() const { return counts_.back(); }

  /// Approximate p-quantile (q in [0,1]) from bucket midpoints. Quantiles
  /// that land in the overflow bucket are reported as that bucket's lower
  /// bound (num_buckets * width): the true value is at least this large.
  double Quantile(double q) const;

  /// Raw bucket state, for checkpoint/restore. `counts` must match this
  /// histogram's bucket count (checked) — the geometry itself (width,
  /// bucket count) is construction-time configuration, not restored state.
  const std::vector<std::uint64_t>& raw_counts() const { return counts_; }
  void set_state(std::vector<std::uint64_t> counts, std::uint64_t total) {
    VIXNOC_CHECK(counts.size() == counts_.size());
    counts_ = std::move(counts);
    total_ = total;
  }

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Per-node packet accounting used for throughput and fairness metrics.
struct NodeCounters {
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_ejected = 0;   ///< packets whose destination is here
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_ejected = 0;
  std::uint64_t packets_delivered = 0; ///< packets *sourced* here that arrived
};

}  // namespace vixnoc
