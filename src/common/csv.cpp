#include "common/csv.hpp"

#include "common/check.hpp"
#include "common/error.hpp"

namespace vixnoc {

namespace {

std::string Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : path_(path), width_(header.size()) {
  VIXNOC_REQUIRE(!header.empty(), "CSV header must be non-empty");
  file_ = std::fopen(path.c_str(), "w");
  VIXNOC_REQUIRE(file_ != nullptr, "cannot open CSV file for writing: %s",
                 path.c_str());
  WriteRow(header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::AddRow(const std::vector<std::string>& row) {
  VIXNOC_REQUIRE(row.size() == width_,
                 "CSV row has %zu cells but the header has %zu",
                 row.size(), width_);
  WriteRow(row);
}

void CsvWriter::WriteRow(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) std::fputc(',', file_);
    const std::string cell = Escape(row[i]);
    std::fwrite(cell.data(), 1, cell.size(), file_);
  }
  std::fputc('\n', file_);
}

}  // namespace vixnoc
