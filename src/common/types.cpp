#include "common/types.hpp"

#include <algorithm>
#include <cctype>

namespace vixnoc {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

std::string ToString(AllocScheme scheme) {
  switch (scheme) {
    case AllocScheme::kInputFirst:
      return "IF";
    case AllocScheme::kWavefront:
      return "WF";
    case AllocScheme::kAugmentingPath:
      return "AP";
    case AllocScheme::kVix:
      return "VIX";
    case AllocScheme::kVixIdeal:
      return "VIX-ideal";
    case AllocScheme::kPacketChaining:
      return "PC";
    case AllocScheme::kIslip:
      return "iSLIP";
    case AllocScheme::kSparoflo:
      return "SPAROFLO";
    case AllocScheme::kSerenade:
      return "SERENADE";
  }
  return "?";
}

std::string ToString(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kMesh:
      return "Mesh";
    case TopologyKind::kCMesh:
      return "CMesh";
    case TopologyKind::kFBfly:
      return "FBfly";
    case TopologyKind::kTorus:
      return "Torus";
  }
  return "?";
}

bool ParseAllocScheme(const std::string& text, AllocScheme* out) {
  const std::string t = Lower(text);
  if (t == "if" || t == "input-first" || t == "separable") {
    *out = AllocScheme::kInputFirst;
  } else if (t == "wf" || t == "wavefront") {
    *out = AllocScheme::kWavefront;
  } else if (t == "ap" || t == "augmenting-path" || t == "maxmatch") {
    *out = AllocScheme::kAugmentingPath;
  } else if (t == "vix") {
    *out = AllocScheme::kVix;
  } else if (t == "vix-ideal" || t == "ideal") {
    *out = AllocScheme::kVixIdeal;
  } else if (t == "pc" || t == "packet-chaining") {
    *out = AllocScheme::kPacketChaining;
  } else if (t == "islip") {
    *out = AllocScheme::kIslip;
  } else if (t == "sparoflo") {
    *out = AllocScheme::kSparoflo;
  } else if (t == "serenade") {
    *out = AllocScheme::kSerenade;
  } else {
    return false;
  }
  return true;
}

bool ParseTopologyKind(const std::string& text, TopologyKind* out) {
  const std::string t = Lower(text);
  if (t == "mesh") {
    *out = TopologyKind::kMesh;
  } else if (t == "cmesh") {
    *out = TopologyKind::kCMesh;
  } else if (t == "fbfly" || t == "flattened-butterfly") {
    *out = TopologyKind::kFBfly;
  } else if (t == "torus") {
    *out = TopologyKind::kTorus;
  } else {
    return false;
  }
  return true;
}

}  // namespace vixnoc
