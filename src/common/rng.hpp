// Deterministic, fast pseudo-random number generation.
//
// Simulations must be bit-reproducible across runs and platforms, so we do
// not use std::mt19937 + std::uniform_*_distribution (whose outputs are not
// portable for all distributions). Xoshiro256** seeded via SplitMix64 gives
// high-quality 64-bit streams with a tiny state.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace vixnoc {

/// SplitMix64: used to expand a single seed into Xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  std::uint64_t Next64() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    VIXNOC_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    VIXNOC_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  /// Raw generator state, for checkpoint/restore. Restoring a captured
  /// state resumes the stream at exactly the next draw.
  using State = std::array<std::uint64_t, 4>;
  State state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const State& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace vixnoc
