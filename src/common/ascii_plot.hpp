// Terminal line plots for the bench binaries: the paper's figures are
// line charts, so benches render their series directly as ASCII next to
// the numeric tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace vixnoc {

class AsciiPlot {
 public:
  /// Canvas of `width` x `height` characters plus axes.
  AsciiPlot(int width, int height, std::string x_label, std::string y_label);

  /// Add a named series; `marker` is the character used for its points.
  /// Series are drawn in insertion order (later series overdraw earlier
  /// ones where they collide).
  void AddSeries(const std::string& name, char marker,
                 std::vector<std::pair<double, double>> points);

  /// Clamp the y-axis (e.g. to keep saturated-latency blowups readable).
  /// By default ranges fit the data.
  void SetYLimit(double y_max) { y_max_override_ = y_max; }

  void Print(std::FILE* out = stdout) const;

 private:
  struct Series {
    std::string name;
    char marker;
    std::vector<std::pair<double, double>> points;
  };

  int width_, height_;
  std::string x_label_, y_label_;
  std::vector<Series> series_;
  double y_max_override_ = -1.0;
};

}  // namespace vixnoc
