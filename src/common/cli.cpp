#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace vixnoc {

ArgMap ArgMap::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read config file '%s'\n", path.c_str());
    std::exit(2);
  }
  ArgMap args;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim leading whitespace; skip comments and blank lines.
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const auto end = line.find_last_not_of(" \t\r");
    const std::string trimmed = line.substr(start, end - start + 1);
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "%s:%d: expected key=value, got '%s'\n",
                   path.c_str(), line_no, trimmed.c_str());
      std::exit(2);
    }
    args.values_[trimmed.substr(0, eq)] = trimmed.substr(eq + 1);
  }
  return args;
}

void ArgMap::Merge(const ArgMap& overrides) {
  for (const auto& [key, value] : overrides.values_) {
    values_[key] = value;
  }
}

ArgMap ArgMap::Parse(int argc, char** argv) {
  ArgMap args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "expected key=value, got '%s'\n", arg.c_str());
      std::exit(2);
    }
    args.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

bool ArgMap::Has(const std::string& key) const {
  consumed_.insert(key);
  return values_.count(key) > 0;
}

std::string ArgMap::GetString(const std::string& key,
                              const std::string& fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgMap::GetInt(const std::string& key,
                            std::int64_t fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "argument %s: '%s' is not an integer\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return v;
}

double ArgMap::GetDouble(const std::string& key, double fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "argument %s: '%s' is not a number\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return v;
}

bool ArgMap::GetBool(const std::string& key, bool fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  std::fprintf(stderr, "argument %s: '%s' is not a boolean\n", key.c_str(),
               v.c_str());
  std::exit(2);
}

void ArgMap::CheckAllConsumed() const {
  bool ok = true;
  for (const auto& [key, value] : values_) {
    if (!consumed_.count(key)) {
      std::fprintf(stderr, "unknown argument: %s=%s\n", key.c_str(),
                   value.c_str());
      ok = false;
    }
  }
  if (!ok) std::exit(2);
}

}  // namespace vixnoc
