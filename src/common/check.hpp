// Lightweight invariant checking.
//
// VIXNOC_CHECK is always on (simulation correctness beats a few percent of
// speed; a silently-corrupt cycle-accurate model is worthless).
// VIXNOC_DCHECK compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace vixnoc::detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "vixnoc: check failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace vixnoc::detail

#define VIXNOC_CHECK(expr)                                    \
  do {                                                        \
    if (!(expr)) {                                            \
      ::vixnoc::detail::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                         \
  } while (false)

#ifdef NDEBUG
#define VIXNOC_DCHECK(expr) \
  do {                      \
  } while (false)
#else
#define VIXNOC_DCHECK(expr) VIXNOC_CHECK(expr)
#endif
