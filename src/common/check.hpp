// Lightweight invariant checking.
//
// VIXNOC_CHECK is always on (simulation correctness beats a few percent of
// speed; a silently-corrupt cycle-accurate model is worthless).
// VIXNOC_DCHECK compiles out in NDEBUG builds and is used on hot paths.
//
// Both abort the process: they guard invariants whose violation means the
// simulation state is already corrupt. Recoverable validation (bad configs,
// malformed input) uses VIXNOC_REQUIRE (common/error.hpp), which throws a
// vixnoc::SimError that sweep drivers catch per simulation point.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace vixnoc {
namespace detail {

/// Thread-local description of the simulation point currently running on
/// this thread ("scheme=vix topology=mesh rate=0.25 seed=7"). Printed by
/// CheckFailed and appended to SimError messages so aborts and errors in
/// parallel sweeps are attributable to a point. Empty when no point is
/// active.
inline thread_local char g_sim_context[192] = {};

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "vixnoc: check failed: %s at %s:%d\n", expr, file,
               line);
  if (g_sim_context[0] != '\0') {
    std::fprintf(stderr, "vixnoc: while simulating %s\n", g_sim_context);
  }
  std::abort();
}

}  // namespace detail

/// RAII setter for the thread-local sim-point context. Nesting overwrites;
/// destruction restores the empty state (points never nest in practice).
class ScopedSimContext {
 public:
  ScopedSimContext(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(detail::g_sim_context, sizeof detail::g_sim_context, fmt,
                   args);
    va_end(args);
  }
  ~ScopedSimContext() { detail::g_sim_context[0] = '\0'; }

  ScopedSimContext(const ScopedSimContext&) = delete;
  ScopedSimContext& operator=(const ScopedSimContext&) = delete;
};

}  // namespace vixnoc

#define VIXNOC_CHECK(expr)                                    \
  do {                                                        \
    if (!(expr)) {                                            \
      ::vixnoc::detail::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                         \
  } while (false)

#ifdef NDEBUG
#define VIXNOC_DCHECK(expr) \
  do {                      \
  } while (false)
#else
#define VIXNOC_DCHECK(expr) VIXNOC_CHECK(expr)
#endif
