// Recoverable errors.
//
// VIXNOC_REQUIRE validates configs and external input: on failure it throws
// vixnoc::SimError instead of aborting, so a driver running many simulation
// points (SweepRunner) can mark one point failed and keep the rest alive.
// Use VIXNOC_CHECK (common/check.hpp) only for invariants whose violation
// means in-memory state is already corrupt.
//
//   VIXNOC_REQUIRE(config.buffer_depth >= 1,
//                  "buffer_depth must be >= 1, got %d", config.buffer_depth);
#pragma once

#include <stdexcept>
#include <string>

namespace vixnoc {

/// A recoverable simulation error: invalid configuration, malformed input,
/// or a detected-but-survivable runtime condition. The message includes the
/// failing source location and, when a simulation point is active on this
/// thread, its scheme/topology/rate context (see ScopedSimContext).
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& message)
      : std::runtime_error(message) {}
};

namespace detail {

[[noreturn]] void ThrowSimError(const char* file, int line, const char* fmt,
                                ...) __attribute__((format(printf, 3, 4)));

}  // namespace detail
}  // namespace vixnoc

#define VIXNOC_REQUIRE(expr, ...)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::vixnoc::detail::ThrowSimError(__FILE__, __LINE__, __VA_ARGS__); \
    }                                                                  \
  } while (false)
