// Minimal key=value command-line parsing for the example/bench drivers.
//
//   ArgMap args = ArgMap::Parse(argc, argv);      // "topology=fbfly rate=0.1"
//   double rate = args.GetDouble("rate", 0.05);
//   args.CheckAllConsumed();                      // typo protection
#pragma once

#include <map>
#include <set>
#include <string>

namespace vixnoc {

class ArgMap {
 public:
  static ArgMap Parse(int argc, char** argv);

  /// Loads key=value lines from a file ('#' comments and blank lines
  /// skipped). Aborts with a message on unreadable files or bad lines.
  static ArgMap FromFile(const std::string& path);

  /// Overlay: values present in `overrides` replace this map's values
  /// (command line beats config file).
  void Merge(const ArgMap& overrides);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Aborts with a message listing unknown keys (ones never queried).
  /// Call after all Get*() calls.
  void CheckAllConsumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

}  // namespace vixnoc
