// The network: routers wired per a Topology, flit/credit links with
// pipeline latency, and per-node network interfaces (NIs) with unbounded
// source queues (open-loop injection) and flit reassembly at ejection.
//
// Determinism: all inter-router interaction flows through delayed link
// events, and each component only reads its own committed state, so a
// simulation is bit-reproducible for a given seed regardless of platform.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "fault/fault_model.hpp"
#include "router/router.hpp"
#include "topology/topology.hpp"

namespace vixnoc {

class SnapshotReader;
class SnapshotWriter;
class TelemetryCollector;

/// Timing of the links around the 3-stage router pipeline (Fig 6b).
struct NetworkParams {
  RouterConfig router;
  /// Cycles from a switch-allocation grant to the flit being usable in the
  /// downstream input buffer: ST + LT for the 3-stage pipeline.
  int flit_delay = 3;
  /// Cycles for a freed buffer slot to become a usable upstream credit.
  int credit_delay = 2;
  /// Cycles from NI injection decision to the router input buffer.
  int ni_link_delay = 1;
  /// Fault schedule driving link-down / router-stall / corruption masks.
  /// Null (the default) takes none of the fault paths.
  std::shared_ptr<const FaultModel> faults;
  /// Routing algorithm used by every router and NI (a src/routing/ plugin,
  /// typically from MakeRoutingAlgorithm). Must outlive the network. Null
  /// (the default) builds and owns the "dor" plugin for the topology.
  const RoutingAlgorithm* routing = nullptr;
  /// Observability sink (telemetry/telemetry.hpp); must outlive the
  /// network. Null (the default) keeps every hot path at one pointer test
  /// and the simulation bitwise identical to an uninstrumented run.
  TelemetryCollector* telemetry = nullptr;
};

/// Everything known about a delivered packet, passed to the eject callback.
struct PacketRecord {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int size_flits = 0;
  Cycle created = 0;   ///< entered the source queue
  Cycle injected = 0;  ///< head flit left the NI
  Cycle ejected = 0;   ///< tail flit arrived at the destination NI
  std::uint64_t user_tag = 0;
  /// Any of the packet's flits was payload-corrupted by a link fault.
  bool corrupted = false;
};

class Network {
 public:
  Network(std::shared_ptr<Topology> topology, const NetworkParams& params);

  const Topology& topology() const { return *topology_; }
  const NetworkParams& params() const { return params_; }
  Cycle now() const { return now_; }
  int NumNodes() const { return topology_->NumNodes(); }

  /// Queue a packet at `src`'s NI. Returns its id. `created` defaults to
  /// the current cycle. `msg_class` selects the virtual network when the
  /// router config partitions VCs into message classes.
  PacketId EnqueuePacket(NodeId src, NodeId dst, int size_flits,
                         std::uint64_t user_tag = 0, int msg_class = 0);

  /// Invoked when a packet's tail flit reaches its destination NI.
  using EjectCallback = std::function<void(const PacketRecord&)>;
  void SetEjectCallback(EjectCallback cb) { eject_cb_ = std::move(cb); }

  /// Per-flit event stream for debugging and microarchitectural analysis.
  /// kInject fires when the NI puts a flit on its injection link, kTraverse
  /// when a router's switch forwards it, kEject when it reaches the
  /// destination NI. The tracer adds no cost when unset.
  enum class FlitEventKind : std::uint8_t { kInject, kTraverse, kEject };
  struct FlitEvent {
    FlitEventKind kind;
    Cycle cycle;
    RouterId router;  ///< kTraverse only; -1 otherwise
    PortId out_port;  ///< kTraverse only
    Flit flit;
  };
  using FlitTracer = std::function<void(const FlitEvent&)>;
  void SetFlitTracer(FlitTracer tracer) { tracer_ = std::move(tracer); }

  /// Advance one cycle: deliver due link events, step NIs, step routers.
  void Step();

  /// True when no flit exists anywhere: source queues, buffers, or links.
  bool Quiescent() const;

  /// Cycles elapsed since any flit traversed a crossbar or was injected —
  /// a forward-progress watchdog. A non-quiescent network whose counter
  /// keeps growing is deadlocked (impossible under DOR + credits, but the
  /// check keeps experimental routing functions honest).
  Cycle CyclesSinceProgress() const { return now_ - last_progress_; }
  bool SuspectedDeadlock(Cycle threshold = 1'000) const {
    return !Quiescent() && CyclesSinceProgress() >= threshold;
  }

  const NodeCounters& counters(NodeId node) const { return counters_[node]; }
  void ClearCounters();

  /// Flits buffered inside each router right now — the per-router occupancy
  /// snapshot attached to watchdog (deadlock) reports.
  std::vector<std::uint32_t> OccupancySnapshot() const;

  std::size_t SourceQueueLength(NodeId node) const {
    return nis_[node].source_queue.size();
  }
  /// Total flits currently queued in every NI source queue.
  std::uint64_t TotalSourceQueueFlits() const;

  /// Sum of all routers' activity counters (energy model input).
  RouterActivity TotalActivity() const;
  void ClearActivity();

  Router& router(RouterId id) { return *routers_[id]; }
  const Router& router(RouterId id) const { return *routers_[id]; }
  int NumRouters() const { return static_cast<int>(routers_.size()); }

  /// Checkpoint/restore of all mutable network state: the cycle counter,
  /// every router, every NI (source queues, active transmissions, credits),
  /// the in-flight link events, and the per-node counters. Fault masks and
  /// the telemetry/eject/tracer attachments are reconstructed by the owner,
  /// not serialized. Restoring into a Network built from the same topology
  /// and NetworkParams makes subsequent Step calls bitwise identical to a
  /// network that never stopped; a geometry mismatch throws SimError.
  void SaveState(SnapshotWriter& w) const;
  void LoadState(SnapshotReader& r);

  /// Convenience wrappers writing/reading a standalone checkpoint file with
  /// a single "network" section, fingerprinted by the network's structural
  /// shape (see snapshot/snapshot.hpp for the file format). RunNetworkSim
  /// embeds the same section in its richer checkpoint instead.
  void SaveCheckpoint(const std::string& path) const;
  void RestoreCheckpoint(const std::string& path);

  /// FNV-1a fingerprint of the structural shape (topology, router config,
  /// link delays) used to reject restoring into a mismatched network.
  std::uint64_t StructureFingerprint() const;

 private:
  struct PendingPacket {
    PacketId id;
    NodeId dst;
    int size;
    Cycle created;
    std::uint64_t user_tag;
    int msg_class;
  };

  struct ActiveTx {
    PacketId id;
    NodeId dst;
    int size;
    int sent;
    Cycle created;
    Cycle injected;
    std::uint64_t user_tag;
    PortId route_out;  ///< output port at the attached router (lookahead)
    VcId vc;           ///< injection VC at the router input port
    int msg_class;
  };

  struct Ni {
    NodeId node;
    RouterId router;
    PortId port;  ///< injection input port == ejection output port index
    std::deque<PendingPacket> source_queue;
    std::vector<ActiveTx> active;
    std::vector<int> credits;    ///< per injection VC
    std::vector<bool> vc_busy;   ///< NI-side allocation of injection VCs
    int rr = 0;                  ///< round-robin pointer over active txs
    /// Packets with a corrupted non-tail flit already ejected here; the
    /// tail flit resolves them into PacketRecord::corrupted. Touched only
    /// when fault injection is active.
    std::vector<PacketId> corrupted_partial;
    /// Injection-VC randomness; drawn from only under
    /// VcAssignPolicy::kRandomFree (per-node stream, like routers').
    Rng vc_rng;
  };

  struct Event {
    enum class Kind : std::uint8_t {
      kFlitToRouter,
      kCreditToRouter,
      kFlitToNi,
      kCreditToNi,
    };
    Kind kind;
    std::int32_t target;  ///< router id or node id
    PortId port;          ///< input port (flit) or output port (credit)
    VcId vc;              ///< credit VC
    Flit flit;
  };

  /// Precomputed event header for one (router, port): where a flit sent on
  /// an output port, or a credit freed on an input port, must be delivered.
  /// Filled at construction so the per-flit path in Step is a table read
  /// and a wheel push instead of link-table branching.
  struct EventTemplate {
    Event::Kind kind = Event::Kind::kFlitToRouter;
    std::int32_t target = -1;
    PortId port = kInvalidPort;
  };

  /// Who feeds input port `in_port` of `router`: either an upstream router
  /// output (router id + out port) or an NI (node id).
  struct Upstream {
    RouterId router = -1;
    PortId out_port = kInvalidPort;
    NodeId node = kInvalidNode;
  };
  Upstream UpstreamOf(RouterId router, PortId in_port) const {
    return upstream_[static_cast<std::size_t>(router) * topology_->Radix() +
                     in_port];
  }

  void Schedule(Cycle at, Event ev);
  void DeliverDue();
  void StepNi(Ni& ni);
  void HandleEjectedFlit(Ni& ni, const Flit& flit);
  void UpdateFaultMasks();

  std::shared_ptr<Topology> topology_;
  NetworkParams params_;
  std::unique_ptr<RoutingAlgorithm> owned_routing_;  ///< default "dor" plugin
  const RoutingAlgorithm* routing_;  ///< params.routing or owned_routing_
  std::vector<bool> router_stalled_;  ///< non-empty only with stall faults
  bool corruption_active_ = false;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<Upstream> upstream_;  // routers * radix
  std::vector<EventTemplate> flit_dispatch_;    // routers * radix, out port
  std::vector<EventTemplate> credit_dispatch_;  // routers * radix, in port
  std::vector<Ni> nis_;
  std::vector<NodeCounters> counters_;
  EjectCallback eject_cb_;
  FlitTracer tracer_;

  // Event wheel: slot = cycle % wheel size.
  std::vector<std::vector<Event>> wheel_;
  std::uint64_t in_flight_events_ = 0;

  Cycle now_ = 0;
  Cycle last_progress_ = 0;
  PacketId next_packet_id_ = 1;

  // Per-cycle scratch.
  std::vector<Router::SentFlit> sent_flits_;
  std::vector<Router::SentCredit> sent_credits_;
  std::vector<OutputVcView> ni_vc_views_;  // VcsPerClass(), reused per NI
};

}  // namespace vixnoc
