#include "network/network.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "router/vc_assign.hpp"
#include "routing/registry.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"
#include "telemetry/telemetry.hpp"

namespace vixnoc {

Network::Network(std::shared_ptr<Topology> topology,
                 const NetworkParams& params)
    : topology_(std::move(topology)), params_(params) {
  VIXNOC_CHECK(topology_ != nullptr);
  VIXNOC_REQUIRE(params_.flit_delay >= 1, "flit_delay must be >= 1, got %d",
                 params_.flit_delay);
  VIXNOC_REQUIRE(params_.credit_delay >= 1,
                 "credit_delay must be >= 1, got %d", params_.credit_delay);
  VIXNOC_REQUIRE(params_.ni_link_delay >= 1,
                 "ni_link_delay must be >= 1, got %d", params_.ni_link_delay);
  VIXNOC_REQUIRE(params_.router.radix == topology_->Radix(),
                 "router radix %d does not match topology radix %d",
                 params_.router.radix, topology_->Radix());
  if (params_.routing != nullptr) {
    routing_ = params_.routing;
  } else {
    owned_routing_ = MakeRoutingAlgorithm("dor", *topology_);
    routing_ = owned_routing_.get();
  }

  const int num_routers = topology_->NumRouters();
  routers_.reserve(num_routers);
  for (RouterId r = 0; r < num_routers; ++r) {
    routers_.push_back(std::make_unique<Router>(
        r, params_.router, topology_->LinksFor(r), routing_));
  }

  if (params_.telemetry != nullptr) {
    params_.telemetry->AttachRouters(num_routers, routers_[0]->geometry(),
                                     params_.router.buffer_depth);
    for (auto& router : routers_) router->SetTelemetry(params_.telemetry);
  }

  if (params_.faults != nullptr) {
    const FaultModel& fm = *params_.faults;
    // Permanent faults are in force from cycle 0 so lookahead routing and
    // the link masks can never disagree mid-flight.
    for (const auto& [r, o] : fm.permanent_down()) {
      VIXNOC_REQUIRE(r >= 0 && r < num_routers && o >= 0 &&
                         o < topology_->Radix(),
                     "fault model names router %d port %d outside this "
                     "network",
                     r, o);
      routers_[r]->SetOutputBlocked(o, true);
    }
    if (!fm.stalls().empty()) {
      router_stalled_.assign(num_routers, false);
    }
    corruption_active_ = fm.config().corruption_rate > 0.0;
  }

  upstream_.resize(static_cast<std::size_t>(num_routers) *
                   topology_->Radix());
  for (RouterId r = 0; r < num_routers; ++r) {
    const auto links = topology_->LinksFor(r);
    for (PortId o = 0; o < topology_->Radix(); ++o) {
      if (links[o].neighbor < 0) continue;
      Upstream& up = upstream_[static_cast<std::size_t>(links[o].neighbor) *
                                   topology_->Radix() +
                               links[o].neighbor_in_port];
      up.router = r;
      up.out_port = o;
    }
  }

  const int num_nodes = topology_->NumNodes();
  nis_.resize(num_nodes);
  counters_.resize(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    Ni& ni = nis_[n];
    ni.node = n;
    ni.router = topology_->RouterOfNode(n);
    ni.port = topology_->InjectPortOfNode(n);
    VIXNOC_CHECK(ni.port == topology_->EjectPortOfNode(n));
    ni.credits.assign(params_.router.num_vcs, params_.router.buffer_depth);
    ni.vc_busy.assign(params_.router.num_vcs, false);
    // Per-node stream offset from the routers' (id + 1) spacing so NI and
    // router streams never coincide.
    ni.vc_rng.Reseed(params_.router.vc_rng_seed +
                     0x9e3779b97f4a7c15ull *
                         (static_cast<std::uint64_t>(topology_->NumRouters()) +
                          static_cast<std::uint64_t>(n) + 1));
    Upstream& up = upstream_[static_cast<std::size_t>(ni.router) *
                                 topology_->Radix() +
                             ni.port];
    VIXNOC_CHECK(up.router == -1);  // injection ports have no router feeder
    up.node = n;
  }

  // Dispatch tables: resolve each (router, port) to its delivery target
  // once, so Step's per-flit/per-credit loops avoid the link-table and
  // upstream-table branching.
  flit_dispatch_.resize(upstream_.size());
  credit_dispatch_.resize(upstream_.size());
  for (RouterId r = 0; r < num_routers; ++r) {
    for (PortId p = 0; p < topology_->Radix(); ++p) {
      const std::size_t at =
          static_cast<std::size_t>(r) * topology_->Radix() + p;
      const OutputLinkInfo& link = routers_[r]->link(p);
      if (link.IsEjection()) {
        flit_dispatch_[at] =
            EventTemplate{Event::Kind::kFlitToNi, link.eject_node,
                          kInvalidPort};
      } else if (link.IsConnected()) {
        flit_dispatch_[at] =
            EventTemplate{Event::Kind::kFlitToRouter, link.neighbor,
                          link.neighbor_in_port};
      }  // unconnected ports keep the target=-1 default (never sent on)
      const Upstream& up = upstream_[at];
      if (up.node >= 0) {
        credit_dispatch_[at] =
            EventTemplate{Event::Kind::kCreditToNi, up.node, kInvalidPort};
      } else if (up.router >= 0) {
        credit_dispatch_[at] = EventTemplate{Event::Kind::kCreditToRouter,
                                             up.router, up.out_port};
      }
    }
  }

  const int horizon = std::max({params_.flit_delay, params_.credit_delay,
                                params_.ni_link_delay}) +
                      1;
  wheel_.resize(horizon);
  ni_vc_views_.resize(params_.router.VcsPerClass());
}

PacketId Network::EnqueuePacket(NodeId src, NodeId dst, int size_flits,
                                std::uint64_t user_tag, int msg_class) {
  VIXNOC_REQUIRE(src >= 0 && src < NumNodes(),
                 "source node %d outside [0, %d)", src, NumNodes());
  VIXNOC_REQUIRE(dst >= 0 && dst < NumNodes(),
                 "destination node %d outside [0, %d)", dst, NumNodes());
  VIXNOC_REQUIRE(size_flits >= 1, "packet size must be >= 1 flit, got %d",
                 size_flits);
  VIXNOC_REQUIRE(
      msg_class >= 0 && msg_class < params_.router.num_message_classes,
      "message class %d outside [0, %d)", msg_class,
      params_.router.num_message_classes);
  const PacketId id = next_packet_id_++;
  nis_[src].source_queue.push_back(
      PendingPacket{id, dst, size_flits, now_, user_tag, msg_class});
  return id;
}

void Network::Schedule(Cycle at, Event ev) {
  VIXNOC_DCHECK(at > now_);
  VIXNOC_DCHECK(at - now_ < wheel_.size());
  wheel_[at % wheel_.size()].push_back(std::move(ev));
  ++in_flight_events_;
}

void Network::DeliverDue() {
  auto& slot = wheel_[now_ % wheel_.size()];
  for (Event& ev : slot) {
    switch (ev.kind) {
      case Event::Kind::kFlitToRouter:
        routers_[ev.target]->AcceptFlit(ev.port, ev.flit);
        break;
      case Event::Kind::kCreditToRouter:
        routers_[ev.target]->AcceptCredit(ev.port, ev.vc);
        break;
      case Event::Kind::kFlitToNi:
        HandleEjectedFlit(nis_[ev.target], ev.flit);
        break;
      case Event::Kind::kCreditToNi: {
        Ni& ni = nis_[ev.target];
        ++ni.credits[ev.vc];
        VIXNOC_CHECK(ni.credits[ev.vc] <= params_.router.buffer_depth);
        break;
      }
    }
  }
  in_flight_events_ -= slot.size();
  slot.clear();
}

void Network::HandleEjectedFlit(Ni& ni, const Flit& flit) {
  ++counters_[ni.node].flits_ejected;
  if (tracer_) {
    tracer_(FlitEvent{FlitEventKind::kEject, now_, -1, kInvalidPort, flit});
  }
  if (params_.telemetry != nullptr && flit.IsTail()) {
    params_.telemetry->OnPacketEjected();
    if (params_.telemetry->SampleTrace(flit.packet_id)) {
      params_.telemetry->RecordTraceEvent(PacketTraceEvent{
          flit.packet_id, PacketTraceEvent::Kind::kEject, now_, -1, flit.src,
          flit.dst});
    }
  }
  if (!flit.IsTail()) {
    if (flit.corrupted) ni.corrupted_partial.push_back(flit.packet_id);
    return;
  }
  bool corrupted = flit.corrupted;
  if (!ni.corrupted_partial.empty()) {
    auto it = std::remove(ni.corrupted_partial.begin(),
                          ni.corrupted_partial.end(), flit.packet_id);
    corrupted = corrupted || it != ni.corrupted_partial.end();
    ni.corrupted_partial.erase(it, ni.corrupted_partial.end());
  }
  ++counters_[ni.node].packets_ejected;
  ++counters_[flit.src].packets_delivered;
  if (eject_cb_) {
    PacketRecord rec;
    rec.id = flit.packet_id;
    rec.src = flit.src;
    rec.dst = flit.dst;
    rec.size_flits = flit.packet_size;
    rec.created = flit.created;
    rec.injected = flit.injected;
    rec.ejected = now_;
    rec.user_tag = flit.user_tag;
    rec.corrupted = corrupted;
    eject_cb_(rec);
  }
}

void Network::StepNi(Ni& ni) {
  const RouterConfig& rc = params_.router;
  const RoutingAlgorithm& routing = *routing_;

  // Start at most one new packet per cycle: pick an injection VC with the
  // same policy routers use for output-VC assignment, steering VIX packets
  // into the sub-group matching their first-hop direction.
  if (!ni.source_queue.empty()) {
    const PendingPacket& pkt = ni.source_queue.front();
    const PortId route_out = routing.Route(ni.router, pkt.dst);
    const int vpc = rc.VcsPerClass();
    const VcId cls_base = pkt.msg_class * vpc;
    std::vector<OutputVcView>& views = ni_vc_views_;
    for (VcId i = 0; i < vpc; ++i) {
      views[i].allocated = ni.vc_busy[cls_base + i];
      views[i].credits = ni.credits[cls_base + i];
    }
    VinLayout layout;
    layout.num_vins = rc.NumVins();
    layout.total_vcs = rc.num_vcs;
    layout.interleaved = rc.interleaved_vins;
    layout.first_vc = cls_base;
    const int pick = PickOutputVc(rc.vc_policy, views, layout,
                                  routing.DimensionOf(route_out), &ni.vc_rng);
    if (pick >= 0) {
      const VcId vc = cls_base + pick;
      ni.vc_busy[vc] = true;
      ni.active.push_back(ActiveTx{pkt.id, pkt.dst, pkt.size, 0, pkt.created,
                                   kNeverCycle, pkt.user_tag, route_out, vc,
                                   pkt.msg_class});
      ni.source_queue.pop_front();
    }
  }

  // Send at most one flit per cycle (the injection link is one flit wide),
  // round-robin across active packets that hold a credit.
  if (ni.active.empty()) return;
  const int n = static_cast<int>(ni.active.size());
  for (int off = 0; off < n; ++off) {
    const int idx = (ni.rr + off) % n;
    ActiveTx& tx = ni.active[idx];
    if (ni.credits[tx.vc] <= 0) continue;

    if (tx.injected == kNeverCycle) tx.injected = now_;
    Flit flit;
    flit.packet_id = tx.id;
    flit.src = ni.node;
    flit.dst = tx.dst;
    flit.type = FlitTypeFor(tx.sent, tx.size);
    flit.seq = static_cast<std::uint16_t>(tx.sent);
    flit.packet_size = static_cast<std::uint16_t>(tx.size);
    flit.created = tx.created;
    flit.injected = tx.injected;
    flit.vc = tx.vc;
    flit.route_out = tx.route_out;
    flit.user_tag = tx.user_tag;
    flit.msg_class = static_cast<std::uint8_t>(tx.msg_class);

    --ni.credits[tx.vc];
    ++tx.sent;
    ++counters_[ni.node].flits_injected;
    if (tx.sent == 1) {
      ++counters_[ni.node].packets_injected;
      if (params_.telemetry != nullptr &&
          params_.telemetry->SampleTrace(tx.id)) {
        params_.telemetry->RecordTraceEvent(
            PacketTraceEvent{tx.id, PacketTraceEvent::Kind::kInject, now_, -1,
                             ni.node, tx.dst});
      }
    }
    if (tracer_) {
      tracer_(
          FlitEvent{FlitEventKind::kInject, now_, -1, kInvalidPort, flit});
    }

    Event ev;
    ev.kind = Event::Kind::kFlitToRouter;
    ev.target = ni.router;
    ev.port = ni.port;
    ev.flit = flit;
    Schedule(now_ + params_.ni_link_delay, std::move(ev));

    if (tx.sent == tx.size) {
      ni.vc_busy[tx.vc] = false;
      ni.active.erase(ni.active.begin() + idx);
      ni.rr = n - 1 > 0 ? ni.rr % (n - 1) : 0;
    } else {
      ni.rr = (idx + 1) % n;
    }
    break;
  }
}

void Network::UpdateFaultMasks() {
  const FaultModel& fm = *params_.faults;
  for (const FaultModel::TransientLink& link : fm.transient_links()) {
    routers_[link.router]->SetOutputBlocked(link.out_port,
                                            fm.TransientDownAt(link, now_));
  }
  for (const FaultModel::StallWindow& stall : fm.stalls()) {
    router_stalled_[stall.router] = fm.StalledAt(stall, now_);
  }
}

void Network::Step() {
  DeliverDue();

  if (params_.faults != nullptr) UpdateFaultMasks();

  for (Ni& ni : nis_) StepNi(ni);

  // Batched link/credit advancement: every flit leaving any router this
  // cycle lands in the same wheel slot (now_ + flit_delay), and every
  // credit in the slot at now_ + credit_delay, so both slots are resolved
  // once up front and each emitted flit/credit becomes a dispatch-table
  // read plus a push. Append order (per router: flits, then credits)
  // matches the unbatched per-event scheduling exactly, so DeliverDue
  // processes events in the identical order.
  sent_flits_.clear();
  sent_credits_.clear();
  const std::size_t radix = static_cast<std::size_t>(topology_->Radix());
  std::vector<Event>& flit_slot =
      wheel_[(now_ + params_.flit_delay) % wheel_.size()];
  std::vector<Event>& credit_slot =
      wheel_[(now_ + params_.credit_delay) % wheel_.size()];
  for (auto& router : routers_) {
    // A stalled router's control pipeline is frozen: no VA/SA/ST this
    // cycle. Deliveries into its buffers (handled above) still land.
    if (!router_stalled_.empty() && router_stalled_[router->id()]) continue;
    const std::size_t flit_mark = sent_flits_.size();
    const std::size_t credit_mark = sent_credits_.size();
    router->Step(now_, &sent_flits_, &sent_credits_);

    const EventTemplate* fd = &flit_dispatch_[router->id() * radix];
    for (std::size_t i = flit_mark; i < sent_flits_.size(); ++i) {
      const Router::SentFlit& sf = sent_flits_[i];
      if (tracer_) {
        tracer_(FlitEvent{FlitEventKind::kTraverse, now_, router->id(),
                          sf.out_port, sf.flit});
      }
      const EventTemplate& t = fd[sf.out_port];
      VIXNOC_DCHECK(t.target >= 0);
      Event ev;
      ev.kind = t.kind;
      ev.target = t.target;
      ev.port = t.port;
      ev.flit = sf.flit;
      if (corruption_active_ && t.kind == Event::Kind::kFlitToRouter &&
          params_.faults->CorruptsTraversal(router->id(), sf.out_port,
                                            now_)) {
        ev.flit.corrupted = true;
      }
      flit_slot.push_back(std::move(ev));
    }

    const EventTemplate* cd = &credit_dispatch_[router->id() * radix];
    for (std::size_t i = credit_mark; i < sent_credits_.size(); ++i) {
      const Router::SentCredit& sc = sent_credits_[i];
      const EventTemplate& t = cd[sc.in_port];
      VIXNOC_CHECK(t.target >= 0);
      Event ev;
      ev.kind = t.kind;
      ev.target = t.target;
      ev.port = t.port;
      ev.vc = sc.vc;
      credit_slot.push_back(std::move(ev));
    }
  }
  in_flight_events_ += sent_flits_.size() + sent_credits_.size();

  if (!sent_flits_.empty()) last_progress_ = now_;

  if (params_.telemetry != nullptr) params_.telemetry->Tick(now_);

  ++now_;
}

bool Network::Quiescent() const {
  if (in_flight_events_ != 0) return false;
  for (const auto& router : routers_) {
    if (!router->Quiescent()) return false;
  }
  for (const Ni& ni : nis_) {
    if (!ni.source_queue.empty() || !ni.active.empty()) return false;
  }
  return true;
}

void Network::ClearCounters() {
  for (auto& c : counters_) c = NodeCounters{};
}

std::vector<std::uint32_t> Network::OccupancySnapshot() const {
  std::vector<std::uint32_t> occupancy(routers_.size());
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    occupancy[r] = static_cast<std::uint32_t>(routers_[r]->TotalBufferedFlits());
  }
  return occupancy;
}

std::uint64_t Network::TotalSourceQueueFlits() const {
  std::uint64_t total = 0;
  for (const Ni& ni : nis_) {
    for (const PendingPacket& p : ni.source_queue) {
      total += static_cast<std::uint64_t>(p.size);
    }
    for (const ActiveTx& tx : ni.active) {
      total += static_cast<std::uint64_t>(tx.size - tx.sent);
    }
  }
  return total;
}

RouterActivity Network::TotalActivity() const {
  RouterActivity total;
  for (const auto& router : routers_) {
    const RouterActivity& a = router->activity();
    total.buffer_writes += a.buffer_writes;
    total.buffer_reads += a.buffer_reads;
    total.xbar_traversals += a.xbar_traversals;
    total.link_flits += a.link_flits;
    total.sa_requests += a.sa_requests;
    total.sa_grants += a.sa_grants;
    total.va_requests += a.va_requests;
    total.va_grants += a.va_grants;
    total.cycles += a.cycles;
    total.cycles_with_requests += a.cycles_with_requests;
  }
  return total;
}

void Network::ClearActivity() {
  for (auto& router : routers_) router->ClearActivity();
}

std::uint64_t Network::StructureFingerprint() const {
  const RouterConfig& rc = params_.router;
  const std::uint64_t fields[] = {
      static_cast<std::uint64_t>(topology_->NumRouters()),
      static_cast<std::uint64_t>(topology_->NumNodes()),
      static_cast<std::uint64_t>(topology_->Radix()),
      static_cast<std::uint64_t>(params_.flit_delay),
      static_cast<std::uint64_t>(params_.credit_delay),
      static_cast<std::uint64_t>(params_.ni_link_delay),
      static_cast<std::uint64_t>(rc.num_vcs),
      static_cast<std::uint64_t>(rc.buffer_depth),
      static_cast<std::uint64_t>(rc.scheme),
      static_cast<std::uint64_t>(rc.arbiter_kind),
      static_cast<std::uint64_t>(rc.vc_policy),
      static_cast<std::uint64_t>(rc.vix_virtual_inputs),
      static_cast<std::uint64_t>(rc.interleaved_vins),
      static_cast<std::uint64_t>(rc.ap_rotate_vcs),
      static_cast<std::uint64_t>(rc.speculative_sa),
      static_cast<std::uint64_t>(rc.va_organization),
      static_cast<std::uint64_t>(rc.prioritize_nonspeculative),
      static_cast<std::uint64_t>(rc.atomic_vc_alloc),
      static_cast<std::uint64_t>(rc.num_message_classes),
      rc.vc_rng_seed,
      routing_->Fingerprint(),
  };
  return Fnv1a64(fields, sizeof(fields));
}

void Network::SaveState(SnapshotWriter& w) const {
  w.U64(now_);
  w.U64(last_progress_);
  w.U64(next_packet_id_);
  w.U64(in_flight_events_);
  // Event wheel. A slot's index determines its due cycle relative to now_
  // (slot = cycle % wheel size), and the wheel size is a pure function of
  // the link delays covered by the structure fingerprint, so serializing
  // slot-by-slot round-trips exactly.
  w.U32(static_cast<std::uint32_t>(wheel_.size()));
  for (const auto& slot : wheel_) {
    w.U32(static_cast<std::uint32_t>(slot.size()));
    for (const Event& ev : slot) {
      w.U8(static_cast<std::uint8_t>(ev.kind));
      w.I32(ev.target);
      w.I32(ev.port);
      w.I32(ev.vc);
      SaveFlit(w, ev.flit);
    }
  }
  for (const NodeCounters& c : counters_) SaveNodeCounters(w, c);
  for (const Ni& ni : nis_) {
    w.U32(static_cast<std::uint32_t>(ni.source_queue.size()));
    for (const PendingPacket& p : ni.source_queue) {
      w.U64(p.id);
      w.I32(p.dst);
      w.I32(p.size);
      w.U64(p.created);
      w.U64(p.user_tag);
      w.I32(p.msg_class);
    }
    w.U32(static_cast<std::uint32_t>(ni.active.size()));
    for (const ActiveTx& tx : ni.active) {
      w.U64(tx.id);
      w.I32(tx.dst);
      w.I32(tx.size);
      w.I32(tx.sent);
      w.U64(tx.created);
      w.U64(tx.injected);
      w.U64(tx.user_tag);
      w.I32(tx.route_out);
      w.I32(tx.vc);
      w.I32(tx.msg_class);
    }
    w.VecI32(ni.credits);
    w.VecBool(ni.vc_busy);
    w.I32(ni.rr);
    w.VecU64(ni.corrupted_partial);
    SaveRng(w, ni.vc_rng);
  }
  for (const auto& router : routers_) router->SaveState(w);
}

void Network::LoadState(SnapshotReader& r) {
  now_ = r.U64();
  last_progress_ = r.U64();
  next_packet_id_ = r.U64();
  const std::uint64_t in_flight = r.U64();
  const std::uint32_t num_slots = r.U32();
  VIXNOC_REQUIRE(num_slots == wheel_.size(),
                 "restored event wheel has %u slots, this network has %zu "
                 "(link delays differ)",
                 num_slots, wheel_.size());
  std::uint64_t counted = 0;
  for (auto& slot : wheel_) {
    slot.clear();
    const std::uint32_t n = r.U32();
    slot.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Event ev;
      const std::uint8_t kind = r.U8();
      VIXNOC_REQUIRE(kind <= static_cast<std::uint8_t>(Event::Kind::kCreditToNi),
                     "restored link event has invalid kind %u", kind);
      ev.kind = static_cast<Event::Kind>(kind);
      ev.target = r.I32();
      ev.port = r.I32();
      ev.vc = r.I32();
      ev.flit = LoadFlit(r);
      slot.push_back(std::move(ev));
    }
    counted += n;
  }
  VIXNOC_REQUIRE(counted == in_flight,
                 "restored wheel holds %llu events but the checkpoint "
                 "recorded %llu in flight",
                 static_cast<unsigned long long>(counted),
                 static_cast<unsigned long long>(in_flight));
  in_flight_events_ = in_flight;
  for (NodeCounters& c : counters_) LoadNodeCounters(r, &c);
  for (Ni& ni : nis_) {
    ni.source_queue.clear();
    const std::uint32_t nq = r.U32();
    for (std::uint32_t i = 0; i < nq; ++i) {
      PendingPacket p;
      p.id = r.U64();
      p.dst = r.I32();
      p.size = r.I32();
      p.created = r.U64();
      p.user_tag = r.U64();
      p.msg_class = r.I32();
      ni.source_queue.push_back(std::move(p));
    }
    ni.active.clear();
    const std::uint32_t na = r.U32();
    ni.active.reserve(na);
    for (std::uint32_t i = 0; i < na; ++i) {
      ActiveTx tx;
      tx.id = r.U64();
      tx.dst = r.I32();
      tx.size = r.I32();
      tx.sent = r.I32();
      tx.created = r.U64();
      tx.injected = r.U64();
      tx.user_tag = r.U64();
      tx.route_out = r.I32();
      tx.vc = r.I32();
      tx.msg_class = r.I32();
      ni.active.push_back(std::move(tx));
    }
    std::vector<int> credits = r.VecI32();
    VIXNOC_REQUIRE(credits.size() == ni.credits.size(),
                   "restored NI credit vector has %zu VCs, expected %zu",
                   credits.size(), ni.credits.size());
    ni.credits = std::move(credits);
    std::vector<bool> busy = r.VecBool();
    VIXNOC_REQUIRE(busy.size() == ni.vc_busy.size(),
                   "restored NI vc_busy vector has %zu VCs, expected %zu",
                   busy.size(), ni.vc_busy.size());
    ni.vc_busy = std::move(busy);
    ni.rr = r.I32();
    ni.corrupted_partial = r.VecU64();
    LoadRng(r, &ni.vc_rng);
  }
  for (auto& router : routers_) router->LoadState(r);
  // Fault masks are a pure function of (fault model, now_) plus the
  // permanent blocks installed at construction; transient masks are
  // recomputed at the top of the next Step.
}

void Network::SaveCheckpoint(const std::string& path) const {
  SnapshotWriter w;
  w.BeginSection("network");
  SaveState(w);
  w.EndSection();
  WriteSnapshotFile(path, w.Finish(StructureFingerprint()));
}

void Network::RestoreCheckpoint(const std::string& path) {
  SnapshotReader r(ReadSnapshotFile(path));
  VIXNOC_REQUIRE(r.fingerprint() == StructureFingerprint(),
                 "checkpoint '%s' was taken on a network with a different "
                 "structure (fingerprint %llx, this network is %llx)",
                 path.c_str(),
                 static_cast<unsigned long long>(r.fingerprint()),
                 static_cast<unsigned long long>(StructureFingerprint()));
  r.OpenSection("network");
  LoadState(r);
  r.CloseSection();
}

}  // namespace vixnoc
