#include "telemetry/telemetry.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

namespace vixnoc {

const char* ToString(PacketTraceEvent::Kind kind) {
  switch (kind) {
    case PacketTraceEvent::Kind::kInject:
      return "inject";
    case PacketTraceEvent::Kind::kVcAlloc:
      return "vc_alloc";
    case PacketTraceEvent::Kind::kSaGrant:
      return "sa_grant";
    case PacketTraceEvent::Kind::kEject:
      return "eject";
  }
  return "?";
}

void RouterTelemetry::Init(const SwitchGeometry& geom, int buffer_depth) {
  VIXNOC_CHECK(geom.Valid());
  VIXNOC_CHECK(buffer_depth >= 1);
  geom_ = geom;
  alloc.Resize(geom);
  port_conflicts.assign(geom.num_inports, PortConflictCounters{});
  vc_stalls.assign(static_cast<std::size_t>(geom.num_inports) * geom.num_vcs,
                   VcStallCounters{});
  grants_per_out.assign(geom.num_outports, 0);
  occupancy_counts_.assign(
      static_cast<std::size_t>(geom.num_vcs) * buffer_depth + 1, 0);
  granted_.assign(static_cast<std::size_t>(geom.num_inports) * geom.num_vcs,
                  false);
  req_vin_.resize(static_cast<std::size_t>(geom.num_inports) * geom.num_vcs);
  req_out_.resize(static_cast<std::size_t>(geom.num_inports) * geom.num_vcs);
  req_count_.resize(geom.num_inports);
  cycles = sa_requests = sa_grants = 0;
}

void RouterTelemetry::Clear() {
  alloc.Clear();
  std::fill(port_conflicts.begin(), port_conflicts.end(),
            PortConflictCounters{});
  std::fill(vc_stalls.begin(), vc_stalls.end(), VcStallCounters{});
  std::fill(grants_per_out.begin(), grants_per_out.end(), 0);
  std::fill(occupancy_counts_.begin(), occupancy_counts_.end(), 0);
  cycles = sa_requests = sa_grants = 0;
}

void RouterTelemetry::RecordAllocationCycle(
    const std::vector<SaRequest>& requests,
    const std::vector<SaGrant>& grants) {
  ++cycles;
  sa_requests += requests.size();
  sa_grants += grants.size();

  std::fill(granted_.begin(), granted_.end(), false);
  for (const SaGrant& g : grants) {
    granted_[static_cast<std::size_t>(g.in_port) * geom_.num_vcs + g.vc] =
        true;
    ++grants_per_out[g.out_port];
  }

  // Group this cycle's requests by input port, keeping each one's
  // (virtual input, output) pair, then classify every multi-request port.
  std::fill(req_count_.begin(), req_count_.end(), 0);
  for (const SaRequest& r : requests) {
    const std::size_t slot = static_cast<std::size_t>(r.in_port) *
                                 geom_.num_vcs +
                             req_count_[r.in_port];
    req_vin_[slot] = geom_.VinOfVc(r.vc);
    req_out_[slot] = r.out_port;
    ++req_count_[r.in_port];
  }
  for (PortId p = 0; p < geom_.num_inports; ++p) {
    const int n = req_count_[p];
    if (n < 2) continue;
    PortConflictCounters& pc = port_conflicts[p];
    ++pc.multi_request_cycles;
    const std::size_t base = static_cast<std::size_t>(p) * geom_.num_vcs;
    bool vins_differ = false;
    bool outs_differ = false;
    for (int i = 1; i < n && !(vins_differ && outs_differ); ++i) {
      vins_differ |= req_vin_[base + i] != req_vin_[base];
      outs_differ |= req_out_[base + i] != req_out_[base];
    }
    if (vins_differ) {
      // With >= 2 distinct virtual inputs and >= 2 distinct outputs, some
      // pair of requests differs in both, so two flits can leave this port
      // this cycle; with one common output, the crossbar's extra input is
      // wasted on an output-port conflict.
      if (outs_differ) {
        ++pc.vin_distinct_output_cycles;
      } else {
        ++pc.vin_same_output_cycles;
      }
    } else if (outs_differ) {
      ++pc.single_vin_serialized_cycles;
    }
  }
}

void RouterTelemetry::RecordVcState(PortId p, VcId c, VcState s) {
  VcStallCounters& vs =
      vc_stalls[static_cast<std::size_t>(p) * geom_.num_vcs + c];
  switch (s) {
    case VcState::kEmpty:
      ++vs.empty;
      break;
    case VcState::kVaStall:
      ++vs.va_stall;
      break;
    case VcState::kCreditStall:
      ++vs.credit_stall;
      break;
    case VcState::kSaStall:
      ++vs.sa_stall;
      break;
    case VcState::kMoving:
      ++vs.moving;
      break;
  }
}

TelemetryCollector::TelemetryCollector(const TelemetryConfig& config)
    : config_(config) {
  VIXNOC_REQUIRE(config_.window_cycles >= 1,
                 "telemetry window_cycles must be >= 1, got %llu",
                 static_cast<unsigned long long>(config_.window_cycles));
  VIXNOC_REQUIRE(config_.max_windows >= 2,
                 "telemetry max_windows must be >= 2, got %zu",
                 config_.max_windows);
  window_width_ = config_.window_cycles;
  windows_.reserve(config_.max_windows);
  trace_.reserve(std::min<std::size_t>(config_.max_trace_events, 4'096));
}

void TelemetryCollector::AttachRouters(int num_routers,
                                       const SwitchGeometry& geom,
                                       int buffer_depth) {
  routers_.resize(num_routers);
  for (RouterTelemetry& rt : routers_) rt.Init(geom, buffer_depth);
}

void TelemetryCollector::ResetCounters() {
  for (RouterTelemetry& rt : routers_) rt.Clear();
  packets_ejected_ = 0;
  // Windows measure deltas against this snapshot; re-basing it to the
  // freshly zeroed totals keeps the open window consistent (it simply loses
  // the pre-reset part of its span).
  last_totals_ = WindowTotals{};
}

TelemetryCollector::WindowTotals TelemetryCollector::CurrentTotals() const {
  WindowTotals t;
  for (const RouterTelemetry& rt : routers_) {
    t.sa_requests += rt.sa_requests;
    t.sa_grants += rt.sa_grants;
    for (const PortConflictCounters& pc : rt.port_conflicts) {
      t.conflicts_distinct += pc.vin_distinct_output_cycles;
      t.conflicts_same += pc.vin_same_output_cycles;
    }
  }
  t.packets_ejected = packets_ejected_;
  return t;
}

void TelemetryCollector::Tick(Cycle now) {
  // Called once per simulated cycle; the window [start, start + width)
  // closes after its last cycle has been processed.
  while (now + 1 >= window_start_ + window_width_) {
    const WindowTotals totals = CurrentTotals();
    TelemetryWindow w;
    w.start = window_start_;
    w.width = window_width_;
    w.sa_requests = totals.sa_requests - last_totals_.sa_requests;
    w.sa_grants = totals.sa_grants - last_totals_.sa_grants;
    w.vin_conflicts_distinct =
        totals.conflicts_distinct - last_totals_.conflicts_distinct;
    w.vin_conflicts_same = totals.conflicts_same - last_totals_.conflicts_same;
    w.packets_ejected = totals.packets_ejected - last_totals_.packets_ejected;
    windows_.push_back(w);
    last_totals_ = totals;
    window_start_ += window_width_;

    if (windows_.size() >= config_.max_windows) {
      // Reservoir full: merge adjacent pairs (halving the count, keeping
      // coverage contiguous) and double the width of future windows.
      std::size_t out = 0;
      for (std::size_t i = 0; i < windows_.size(); i += 2) {
        TelemetryWindow merged = windows_[i];
        if (i + 1 < windows_.size()) {
          const TelemetryWindow& b = windows_[i + 1];
          merged.width += b.width;
          merged.sa_requests += b.sa_requests;
          merged.sa_grants += b.sa_grants;
          merged.vin_conflicts_distinct += b.vin_conflicts_distinct;
          merged.vin_conflicts_same += b.vin_conflicts_same;
          merged.packets_ejected += b.packets_ejected;
        }
        windows_[out++] = merged;
      }
      windows_.resize(out);
      window_width_ *= 2;
    }
  }
}

TelemetrySummary TelemetryCollector::Summarize() const {
  TelemetrySummary s;
  s.enabled = true;
  std::uint64_t multi = 0, distinct = 0, same = 0, serialized = 0;
  std::uint64_t occ_total = 0;
  std::uint64_t occ_weighted = 0;
  std::size_t occ_size = 0;
  for (const RouterTelemetry& rt : routers_) {
    s.cycles += rt.cycles;
    s.sa_requests += rt.sa_requests;
    s.sa_grants += rt.sa_grants;
    for (std::uint64_t v : rt.alloc.input_requests) {
      s.input_arbiter_requests += v;
    }
    for (std::uint64_t v : rt.alloc.input_grants) s.input_arbiter_grants += v;
    for (std::uint64_t v : rt.alloc.output_requests) {
      s.output_arbiter_requests += v;
    }
    for (std::uint64_t v : rt.alloc.output_grants) {
      s.output_arbiter_grants += v;
    }
    s.output_conflict_cycles += rt.alloc.output_conflict_cycles;
    for (const PortConflictCounters& pc : rt.port_conflicts) {
      multi += pc.multi_request_cycles;
      distinct += pc.vin_distinct_output_cycles;
      same += pc.vin_same_output_cycles;
      serialized += pc.single_vin_serialized_cycles;
    }
    for (const VcStallCounters& vs : rt.vc_stalls) {
      s.stall_empty += vs.empty;
      s.stall_va += vs.va_stall;
      s.stall_credit += vs.credit_stall;
      s.stall_sa += vs.sa_stall;
      s.vc_moving += vs.moving;
    }
    const std::vector<std::uint64_t> occ = rt.occupancy_counts();
    occ_size = std::max(occ_size, occ.size());
    for (std::size_t k = 0; k < occ.size(); ++k) {
      occ_total += occ[k];
      occ_weighted += occ[k] * k;
    }
  }
  s.port_multi_request_cycles = multi;
  s.vin_conflict_distinct_output = distinct;
  s.vin_conflict_same_output = same;
  s.single_vin_serialized = serialized;

  const std::uint64_t vin_conflicts = distinct + same;
  if (vin_conflicts > 0) {
    s.same_output_conflict_rate =
        static_cast<double>(same) / static_cast<double>(vin_conflicts);
  }
  if (multi > 0) {
    s.distinct_output_conflict_rate =
        static_cast<double>(distinct) / static_cast<double>(multi);
  }
  if (!routers_.empty() && routers_[0].cycles > 0) {
    std::uint64_t slots = 0;
    for (const RouterTelemetry& rt : routers_) {
      slots += rt.cycles *
               static_cast<std::uint64_t>(rt.geometry().num_outports);
    }
    s.crossbar_utilization =
        static_cast<double>(s.sa_grants) / static_cast<double>(slots);
  }
  if (occ_total > 0) {
    s.mean_port_occupancy =
        static_cast<double>(occ_weighted) / static_cast<double>(occ_total);
    // p99 over the pooled per-port-per-cycle occupancy samples.
    std::vector<std::uint64_t> pooled(occ_size, 0);
    for (const RouterTelemetry& rt : routers_) {
      const std::vector<std::uint64_t> occ = rt.occupancy_counts();
      for (std::size_t k = 0; k < occ.size(); ++k) pooled[k] += occ[k];
    }
    const auto target = static_cast<std::uint64_t>(
        0.99 * static_cast<double>(occ_total));
    std::uint64_t cum = 0;
    for (std::size_t k = 0; k < pooled.size(); ++k) {
      cum += pooled[k];
      if (cum > target) {
        s.p99_port_occupancy = static_cast<double>(k);
        break;
      }
    }
  }
  s.windows = windows_;
  s.trace = trace_;
  return s;
}

void WriteTraceEventJson(std::FILE* f, const PacketTraceEvent& ev) {
  std::fprintf(f,
               "{\"packet\": %llu, \"event\": \"%s\", \"cycle\": %llu, "
               "\"router\": %d, \"src\": %d, \"dst\": %d}\n",
               static_cast<unsigned long long>(ev.packet), ToString(ev.kind),
               static_cast<unsigned long long>(ev.cycle),
               static_cast<int>(ev.router), static_cast<int>(ev.src),
               static_cast<int>(ev.dst));
}

void TelemetryCollector::WriteTraceJsonl(std::FILE* f) const {
  for (const PacketTraceEvent& ev : trace_) WriteTraceEventJson(f, ev);
}

namespace {

void SavePortConflicts(SnapshotWriter& w, const PortConflictCounters& c) {
  w.U64(c.multi_request_cycles);
  w.U64(c.vin_distinct_output_cycles);
  w.U64(c.vin_same_output_cycles);
  w.U64(c.single_vin_serialized_cycles);
}

PortConflictCounters LoadPortConflicts(SnapshotReader& r) {
  PortConflictCounters c;
  c.multi_request_cycles = r.U64();
  c.vin_distinct_output_cycles = r.U64();
  c.vin_same_output_cycles = r.U64();
  c.single_vin_serialized_cycles = r.U64();
  return c;
}

void SaveVcStalls(SnapshotWriter& w, const VcStallCounters& c) {
  w.U64(c.empty);
  w.U64(c.va_stall);
  w.U64(c.credit_stall);
  w.U64(c.sa_stall);
  w.U64(c.moving);
}

VcStallCounters LoadVcStalls(SnapshotReader& r) {
  VcStallCounters c;
  c.empty = r.U64();
  c.va_stall = r.U64();
  c.credit_stall = r.U64();
  c.sa_stall = r.U64();
  c.moving = r.U64();
  return c;
}

void CheckSameSize(std::size_t got, std::size_t expected, const char* what) {
  VIXNOC_REQUIRE(got == expected,
                 "restored telemetry %s has %zu entries, expected %zu", what,
                 got, expected);
}

}  // namespace

void RouterTelemetry::SaveState(SnapshotWriter& w) const {
  w.VecU64(alloc.input_requests);
  w.VecU64(alloc.input_grants);
  w.VecU64(alloc.output_requests);
  w.VecU64(alloc.output_grants);
  w.U64(alloc.output_conflict_cycles);
  w.U32(static_cast<std::uint32_t>(port_conflicts.size()));
  for (const PortConflictCounters& c : port_conflicts) SavePortConflicts(w, c);
  w.U32(static_cast<std::uint32_t>(vc_stalls.size()));
  for (const VcStallCounters& c : vc_stalls) SaveVcStalls(w, c);
  w.VecU64(grants_per_out);
  w.VecU64(occupancy_counts_);
  w.U64(cycles);
  w.U64(sa_requests);
  w.U64(sa_grants);
}

void RouterTelemetry::LoadState(SnapshotReader& r) {
  std::vector<std::uint64_t> v = r.VecU64();
  CheckSameSize(v.size(), alloc.input_requests.size(), "input_requests");
  alloc.input_requests = std::move(v);
  v = r.VecU64();
  CheckSameSize(v.size(), alloc.input_grants.size(), "input_grants");
  alloc.input_grants = std::move(v);
  v = r.VecU64();
  CheckSameSize(v.size(), alloc.output_requests.size(), "output_requests");
  alloc.output_requests = std::move(v);
  v = r.VecU64();
  CheckSameSize(v.size(), alloc.output_grants.size(), "output_grants");
  alloc.output_grants = std::move(v);
  alloc.output_conflict_cycles = r.U64();
  const std::uint32_t npc = r.U32();
  CheckSameSize(npc, port_conflicts.size(), "port_conflicts");
  for (auto& c : port_conflicts) c = LoadPortConflicts(r);
  const std::uint32_t nvs = r.U32();
  CheckSameSize(nvs, vc_stalls.size(), "vc_stalls");
  for (auto& c : vc_stalls) c = LoadVcStalls(r);
  v = r.VecU64();
  CheckSameSize(v.size(), grants_per_out.size(), "grants_per_out");
  grants_per_out = std::move(v);
  v = r.VecU64();
  CheckSameSize(v.size(), occupancy_counts_.size(), "occupancy histogram");
  occupancy_counts_ = std::move(v);
  cycles = r.U64();
  sa_requests = r.U64();
  sa_grants = r.U64();
}

void TelemetryCollector::SaveState(SnapshotWriter& w) const {
  w.U32(static_cast<std::uint32_t>(routers_.size()));
  for (const RouterTelemetry& rt : routers_) rt.SaveState(w);
  w.U32(static_cast<std::uint32_t>(windows_.size()));
  for (const TelemetryWindow& win : windows_) {
    w.U64(win.start);
    w.U64(win.width);
    w.U64(win.sa_requests);
    w.U64(win.sa_grants);
    w.U64(win.vin_conflicts_distinct);
    w.U64(win.vin_conflicts_same);
    w.U64(win.packets_ejected);
  }
  w.U64(window_width_);
  w.U64(window_start_);
  w.U64(last_totals_.sa_requests);
  w.U64(last_totals_.sa_grants);
  w.U64(last_totals_.conflicts_distinct);
  w.U64(last_totals_.conflicts_same);
  w.U64(last_totals_.packets_ejected);
  w.U64(packets_ejected_);
  w.U32(static_cast<std::uint32_t>(trace_.size()));
  for (const PacketTraceEvent& ev : trace_) {
    w.U64(ev.packet);
    w.U8(static_cast<std::uint8_t>(ev.kind));
    w.U64(ev.cycle);
    w.I32(ev.router);
    w.I32(ev.src);
    w.I32(ev.dst);
  }
}

void TelemetryCollector::LoadState(SnapshotReader& r) {
  const std::uint32_t nr = r.U32();
  CheckSameSize(nr, routers_.size(), "router blocks");
  for (RouterTelemetry& rt : routers_) rt.LoadState(r);
  const std::uint32_t nw = r.U32();
  windows_.clear();
  windows_.reserve(nw);
  for (std::uint32_t i = 0; i < nw; ++i) {
    TelemetryWindow win;
    win.start = r.U64();
    win.width = r.U64();
    win.sa_requests = r.U64();
    win.sa_grants = r.U64();
    win.vin_conflicts_distinct = r.U64();
    win.vin_conflicts_same = r.U64();
    win.packets_ejected = r.U64();
    windows_.push_back(win);
  }
  window_width_ = r.U64();
  window_start_ = r.U64();
  last_totals_.sa_requests = r.U64();
  last_totals_.sa_grants = r.U64();
  last_totals_.conflicts_distinct = r.U64();
  last_totals_.conflicts_same = r.U64();
  last_totals_.packets_ejected = r.U64();
  packets_ejected_ = r.U64();
  const std::uint32_t nt = r.U32();
  trace_.clear();
  trace_.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) {
    PacketTraceEvent ev;
    ev.packet = r.U64();
    const std::uint8_t kind = r.U8();
    VIXNOC_REQUIRE(kind <= static_cast<std::uint8_t>(
                               PacketTraceEvent::Kind::kEject),
                   "restored trace event has invalid kind %u", kind);
    ev.kind = static_cast<PacketTraceEvent::Kind>(kind);
    ev.cycle = r.U64();
    ev.router = r.I32();
    ev.src = r.I32();
    ev.dst = r.I32();
    trace_.push_back(ev);
  }
}

}  // namespace vixnoc
