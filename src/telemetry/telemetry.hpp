// Router / network observability: per-router, per-port and per-VC counters,
// a constant-memory cycle-windowed time series, and a sampled packet event
// trace. This is the instrumentation that makes the paper's §2 mechanism
// visible: whether conflicting requests at one input port actually land in
// *different* virtual inputs (the case where a VIX crossbar moves two flits
// from one port in one cycle), or collapse onto the same output (the case
// no crossbar can help with — a VC-assignment policy miss).
//
// Overhead contract: the subsystem is dark by default. With no
// TelemetryCollector attached, the router/network hot paths pay exactly one
// null-pointer test per cycle (and per injected/ejected flit) and the
// simulation is bitwise identical to a build without the subsystem —
// telemetry only *reads* simulator state, never mutates it and never draws
// from any RNG stream. Attaching a collector may slow the simulation but
// must not change any simulated outcome.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "alloc/switch_allocator.hpp"
#include "common/types.hpp"

namespace vixnoc {

class SnapshotReader;
class SnapshotWriter;

/// Knobs carried by NetworkSimConfig. Default = disabled = zero cost.
struct TelemetryConfig {
  bool enabled = false;
  /// Initial width of the time-series windows, in cycles.
  Cycle window_cycles = 1'024;
  /// Reservoir capacity: when a run produces more than this many windows,
  /// adjacent pairs are merged (doubling the effective width), so memory
  /// stays constant for arbitrarily long runs.
  std::size_t max_windows = 64;
  /// Sample every packet whose id is a multiple of this period into the
  /// event trace. 0 disables the trace.
  std::uint64_t trace_sample_period = 0;
  /// Hard cap on buffered trace events (constant memory); sampling stops
  /// once reached.
  std::size_t max_trace_events = 65'536;
};

/// Classification of one input port's switch-allocation request set in one
/// cycle. "vin" counters only tick when at least two requesting VCs sit in
/// *different* virtual inputs of the port — exactly the situations the VIX
/// crossbar was built for (or fails to exploit).
struct PortConflictCounters {
  /// Cycles with two or more requesting VCs at this input port.
  std::uint64_t multi_request_cycles = 0;
  /// ... where VCs in distinct virtual inputs requested distinct outputs:
  /// the VIX win case — two flits can leave this port this cycle.
  std::uint64_t vin_distinct_output_cycles = 0;
  /// ... where distinct virtual inputs requested only one common output:
  /// the policy-miss case — the VC-assignment policy spent two crossbar
  /// inputs on a conflict no crossbar can resolve.
  std::uint64_t vin_same_output_cycles = 0;
  /// ... where all requesting VCs share one virtual input despite wanting
  /// distinct outputs: serialized head-of-line conflict (all of an IF
  /// port's conflicts land here; for VIX it is steering-policy clustering).
  std::uint64_t single_vin_serialized_cycles = 0;
};

/// Why an input VC did (not) move in a cycle.
struct VcStallCounters {
  std::uint64_t empty = 0;         ///< no buffered flit (incl. body bubbles)
  std::uint64_t va_stall = 0;      ///< head flit waiting for an output VC
  std::uint64_t credit_stall = 0;  ///< holds a VC, no downstream credit / link down
  std::uint64_t sa_stall = 0;      ///< ready but lost (or withheld from) SA
  std::uint64_t moving = 0;        ///< granted: a flit traversed the switch
};

/// One entry of the sampled packet event trace. Emitted as JSONL by
/// TelemetryCollector::WriteTraceJsonl with schema (one object per line):
///   {"packet": u64, "event": "inject"|"vc_alloc"|"sa_grant"|"eject",
///    "cycle": u64, "router": int (-1 for NI events), "src": int, "dst": int}
struct PacketTraceEvent {
  enum class Kind : std::uint8_t { kInject, kVcAlloc, kSaGrant, kEject };
  PacketId packet = 0;
  Kind kind = Kind::kInject;
  Cycle cycle = 0;
  RouterId router = -1;  ///< -1 for NI-side events (inject/eject)
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
};

const char* ToString(PacketTraceEvent::Kind kind);

/// Per-router counter block. The router drives it from its Step (between
/// switch allocation and grant commit, when requests, grants and buffer
/// state are all still visible).
class RouterTelemetry {
 public:
  void Init(const SwitchGeometry& geom, int buffer_depth);
  void Clear();

  /// Ingest one cycle's request matrix and grant set: classifies per-port
  /// virtual-input conflicts and tracks crossbar slot usage. Also rebuilds
  /// the per-(port, vc) granted mask consumed by WasGranted below.
  void RecordAllocationCycle(const std::vector<SaRequest>& requests,
                             const std::vector<SaGrant>& grants);

  /// Whether (in_port, vc) was granted in the cycle most recently passed to
  /// RecordAllocationCycle.
  bool WasGranted(PortId p, VcId c) const {
    return granted_[static_cast<std::size_t>(p) * geom_.num_vcs + c];
  }

  enum class VcState { kEmpty, kVaStall, kCreditStall, kSaStall, kMoving };
  void RecordVcState(PortId p, VcId c, VcState s);

  /// Total flits buffered at input port `p` this cycle (occupancy histogram
  /// sample; one sample per port per cycle).
  void RecordPortOccupancy(PortId /*port*/, int flits) {
    ++occupancy_counts_[static_cast<std::size_t>(flits)];
  }

  const SwitchGeometry& geometry() const { return geom_; }

  /// Checkpoint/restore of the counter block (per-cycle scratch excluded;
  /// it is rebuilt by the next RecordAllocationCycle).
  void SaveState(SnapshotWriter& w) const;
  void LoadState(SnapshotReader& r);

  /// Per-arbiter counters, filled by the attached separable allocator.
  AllocTelemetry alloc;
  std::vector<PortConflictCounters> port_conflicts;  ///< per input port
  std::vector<VcStallCounters> vc_stalls;            ///< per (port, vc)
  std::vector<std::uint64_t> grants_per_out;         ///< per output port
  /// Occupancy histogram: occupancy_counts[k] = port-cycles with exactly k
  /// buffered flits (k <= num_vcs * buffer_depth).
  std::vector<std::uint64_t> occupancy_counts() const {
    return occupancy_counts_;
  }
  std::uint64_t cycles = 0;
  std::uint64_t sa_requests = 0;
  std::uint64_t sa_grants = 0;

 private:
  SwitchGeometry geom_;
  std::vector<bool> granted_;  // radix * num_vcs, rebuilt each cycle
  std::vector<std::uint64_t> occupancy_counts_;
  // Per-cycle classification scratch: request (vin, out) pairs per port.
  std::vector<std::int32_t> req_vin_;  // radix * num_vcs
  std::vector<std::int32_t> req_out_;  // radix * num_vcs
  std::vector<std::int32_t> req_count_;  // radix
};

/// One window of the time series. Windows are contiguous and cover the run
/// from cycle 0; after reservoir merges, widths grow but stay contiguous.
struct TelemetryWindow {
  Cycle start = 0;
  Cycle width = 0;
  std::uint64_t sa_requests = 0;
  std::uint64_t sa_grants = 0;  ///< == flits through crossbars
  std::uint64_t vin_conflicts_distinct = 0;
  std::uint64_t vin_conflicts_same = 0;
  std::uint64_t packets_ejected = 0;
};

/// Aggregates surfaced in NetworkSimResult (and the sweep JSON records).
/// Counter fields cover the measurement window; `windows` and `trace`
/// cover the whole run including warmup and drain.
struct TelemetrySummary {
  bool enabled = false;
  std::uint64_t cycles = 0;  ///< per-router telemetry cycles (summed)
  std::uint64_t sa_requests = 0;
  std::uint64_t sa_grants = 0;
  std::uint64_t input_arbiter_requests = 0;
  std::uint64_t input_arbiter_grants = 0;
  std::uint64_t output_arbiter_requests = 0;
  std::uint64_t output_arbiter_grants = 0;
  std::uint64_t output_conflict_cycles = 0;
  std::uint64_t port_multi_request_cycles = 0;
  std::uint64_t vin_conflict_distinct_output = 0;
  std::uint64_t vin_conflict_same_output = 0;
  std::uint64_t single_vin_serialized = 0;
  std::uint64_t stall_empty = 0;
  std::uint64_t stall_va = 0;
  std::uint64_t stall_credit = 0;
  std::uint64_t stall_sa = 0;
  std::uint64_t vc_moving = 0;
  /// Granted crossbar slots / (cycles * output ports): the fraction of the
  /// switch's peak bandwidth actually used.
  double crossbar_utilization = 0.0;
  /// Among port-cycles where distinct virtual inputs held conflicting
  /// requests: fraction that targeted one common output (policy misses).
  double same_output_conflict_rate = 0.0;
  /// Among multi-request port-cycles: fraction VIX can exploit (distinct
  /// vins, distinct outputs).
  double distinct_output_conflict_rate = 0.0;
  double mean_port_occupancy = 0.0;
  double p99_port_occupancy = 0.0;
  std::vector<TelemetryWindow> windows;
  std::vector<PacketTraceEvent> trace;
};

/// Owns every router's counter block, the window reservoir and the trace
/// buffer for one simulation. Single-threaded like the Network it observes;
/// sweeps give each point its own collector.
class TelemetryCollector {
 public:
  explicit TelemetryCollector(const TelemetryConfig& config);

  const TelemetryConfig& config() const { return config_; }

  /// Sizes per-router state; called by the Network during construction.
  void AttachRouters(int num_routers, const SwitchGeometry& geom,
                     int buffer_depth);
  RouterTelemetry& router(RouterId r) { return routers_[r]; }
  const RouterTelemetry& router(RouterId r) const { return routers_[r]; }
  int num_routers() const { return static_cast<int>(routers_.size()); }

  /// Zeroes all counters (measurement-window start). The time series and
  /// the trace keep running: windows record deltas against their own
  /// snapshot, which is reset consistently here.
  void ResetCounters();

  /// Window bookkeeping; the Network calls this once per cycle after every
  /// router has stepped.
  void Tick(Cycle now);
  /// Feeds the per-window delivery count; called per delivered packet.
  void OnPacketEjected() { ++packets_ejected_; }

  bool tracing() const { return config_.trace_sample_period > 0; }
  /// Whether `id` is sampled into the event trace (and the buffer has room).
  bool SampleTrace(PacketId id) const {
    return tracing() && id % config_.trace_sample_period == 0 &&
           trace_.size() < config_.max_trace_events;
  }
  void RecordTraceEvent(const PacketTraceEvent& ev) { trace_.push_back(ev); }
  const std::vector<PacketTraceEvent>& trace_events() const { return trace_; }

  const std::vector<TelemetryWindow>& windows() const { return windows_; }
  Cycle window_width() const { return window_width_; }

  /// Aggregates current counter state (plus windows and trace so far).
  TelemetrySummary Summarize() const;

  /// Checkpoint/restore of every router block, the window reservoir and the
  /// trace buffer. Only called for a collector whose AttachRouters geometry
  /// matches the saved one; the checkpoint's own config (window width,
  /// trace sampling) may legitimately differ on a replay run — windows and
  /// trace are restored as recorded and continue under the new config.
  void SaveState(SnapshotWriter& w) const;
  void LoadState(SnapshotReader& r);

  /// Emits the packet event trace as JSONL (schema: see PacketTraceEvent).
  void WriteTraceJsonl(std::FILE* f) const;

 private:
  struct WindowTotals {
    std::uint64_t sa_requests = 0;
    std::uint64_t sa_grants = 0;
    std::uint64_t conflicts_distinct = 0;
    std::uint64_t conflicts_same = 0;
    std::uint64_t packets_ejected = 0;
  };
  WindowTotals CurrentTotals() const;

  TelemetryConfig config_;
  std::vector<RouterTelemetry> routers_;
  std::vector<TelemetryWindow> windows_;
  Cycle window_width_ = 0;
  Cycle window_start_ = 0;
  WindowTotals last_totals_;
  std::uint64_t packets_ejected_ = 0;
  std::vector<PacketTraceEvent> trace_;
};

/// Writes one trace event as a JSONL line (exposed for tests).
void WriteTraceEventJson(std::FILE* f, const PacketTraceEvent& ev);

}  // namespace vixnoc
